#pragma once

// Minimal strict JSON parser for the telemetry layer's *consumers* — the
// regression gate (bench/check_regression.cpp) reads bench reports and
// baselines back in, so unlike emission (telemetry/json.hpp) this needs a
// real DOM. Deliberately small: UTF-8 pass-through, \uXXXX decoded to
// UTF-8, doubles via strtod, objects preserve insertion order (the shapes
// we parse are tiny). Strict: trailing garbage, comments, NaN/Inf tokens,
// and unterminated input are errors reported with a byte offset.

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wss::telemetry::jsonparse {

struct Value;
/// Array storage. (Named to avoid shadowing the Kind enumerators.)
using Values = std::vector<Value>;
/// Object storage: insertion-ordered key/value members.
using Members = std::vector<std::pair<std::string, Value>>;

enum class Kind : unsigned char { Null, Bool, Number, String, Array, Object };

struct Value {
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<Values> array;   ///< set when kind == Array
  std::shared_ptr<Members> object; ///< set when kind == Object

  [[nodiscard]] bool is_null() const { return kind == Kind::Null; }
  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }

  /// Member lookup (first match); nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const {
    if (kind != Kind::Object || !object) return nullptr;
    for (const auto& [k, v] : *object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

struct ParseResult {
  std::optional<Value> value; ///< nullopt on error
  std::string error;          ///< human-readable, with byte offset
  [[nodiscard]] bool ok() const { return value.has_value(); }
};

/// Parse one complete JSON document (surrounding whitespace allowed).
[[nodiscard]] ParseResult parse(std::string_view text);

} // namespace wss::telemetry::jsonparse
