// Run-ledger implementation: run IDs, WSS_* env snapshots, JSONL
// append/load, and the `wss_inspect runs` renderings. See ledger.hpp and
// docs/TIMESERIES.md.

#include "telemetry/ledger.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

#include <sys/stat.h>
#include <unistd.h>

#include "common/env.hpp"
#include "telemetry/io.hpp"
#include "telemetry/json.hpp"
#include "telemetry/json_parse.hpp"
#include "telemetry/timeseries.hpp" // sparkline

extern char** environ;

namespace wss::telemetry {

// --- run identity --------------------------------------------------------

std::string next_run_id(const std::string& program) {
  static std::atomic<std::uint64_t> seq{0};
  std::string slug;
  for (const char ch : program) {
    const auto u = static_cast<unsigned char>(ch);
    if (std::isalnum(u) != 0) {
      slug += static_cast<char>(std::tolower(u));
    } else if (!slug.empty() && slug.back() != '-') {
      slug += '-';
    }
    if (slug.size() >= 24) break;
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  if (slug.empty()) slug = "run";
  return slug + "-" + std::to_string(static_cast<long long>(std::time(nullptr))) +
         "-" + std::to_string(static_cast<long long>(::getpid())) + "-" +
         std::to_string(seq.fetch_add(1) + 1);
}

std::vector<std::pair<std::string, std::string>> wss_environment() {
  std::vector<std::pair<std::string, std::string>> out;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const std::string entry = *e;
    if (entry.rfind("WSS_", 0) != 0) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) continue;
    out.emplace_back(entry.substr(0, eq), entry.substr(eq + 1));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- emission ------------------------------------------------------------

std::string manifest_json(const RunManifest& m) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value(kLedgerSchema);
  w.key("run_id").value(m.run_id);
  w.key("program").value(m.program);
  w.key("width").value(m.width);
  w.key("height").value(m.height);
  w.key("threads").value(m.threads);
  w.key("cycles").value(m.cycles);
  w.key("outcome").value(m.outcome);
  w.key("deadlock").value(m.deadlock);
  w.key("fault_total").value(m.fault_total);
  w.key("env").begin_object();
  for (const auto& [name, value] : m.env) {
    w.key(name).value(value);
  }
  w.end_object();
  w.key("metrics").begin_array();
  for (const RunMetric& metric : m.metrics) {
    w.begin_object();
    w.key("name").value(metric.name);
    w.key("value").value(metric.value);
    w.end_object();
  }
  w.end_array();
  w.key("artifacts").begin_array();
  for (const RunArtifact& a : m.artifacts) {
    w.begin_object();
    w.key("kind").value(a.kind);
    w.key("path").value(a.path);
    w.end_object();
  }
  w.end_array();
  if (!m.alerts.empty()) {
    // Omitted on healthy runs so pre-health ledger lines stay byte-stable
    // against re-emission; the schema tag remains wss.runledger/1.
    w.key("alerts").begin_array();
    for (const RunAlert& a : m.alerts) {
      w.begin_object();
      w.key("rule").value(a.rule);
      w.key("severity").value(a.severity);
      w.key("cycle").value(a.cycle);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  return w.str();
}

std::string ledger_dir() { return env::parse_string("WSS_LEDGER_DIR"); }

bool append_run_manifest(const std::string& dir, const RunManifest& m,
                         std::string* error) {
  if (!ensure_directory(dir, error)) return false;
  const std::string path = dir + "/ledger.jsonl";
  std::ofstream out(path, std::ios::app | std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = path + ": cannot open for append";
    return false;
  }
  out << manifest_json(m) << '\n';
  out.flush();
  if (!out) {
    if (error != nullptr) *error = path + ": append failed";
    return false;
  }
  return true;
}

std::string maybe_append_run_manifest(const RunManifest& m) {
  const std::string dir = ledger_dir();
  if (dir.empty()) return {};
  std::string error;
  if (!append_run_manifest(dir, m, &error)) {
    std::fprintf(stderr, "wss: run-ledger append failed: %s\n",
                 error.c_str());
    return {};
  }
  return dir + "/ledger.jsonl";
}

// --- loading -------------------------------------------------------------

namespace {

using jsonparse::Value;

[[nodiscard]] std::string get_string(const Value* v, const char* key) {
  const Value* m = v != nullptr ? v->find(key) : nullptr;
  return m != nullptr && m->is_string() ? m->string : std::string{};
}
[[nodiscard]] double get_number(const Value* v, const char* key) {
  const Value* m = v != nullptr ? v->find(key) : nullptr;
  return m != nullptr && m->is_number() ? m->number : 0.0;
}
[[nodiscard]] bool get_bool(const Value* v, const char* key) {
  const Value* m = v != nullptr ? v->find(key) : nullptr;
  return m != nullptr && m->kind == jsonparse::Kind::Bool && m->boolean;
}

[[nodiscard]] bool is_directory(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

[[nodiscard]] bool parse_manifest_line(const std::string& line,
                                       RunManifest* out) {
  const jsonparse::ParseResult parsed = jsonparse::parse(line);
  if (!parsed.ok() || !parsed.value->is_object()) return false;
  const Value& root = *parsed.value;
  if (get_string(&root, "schema") != kLedgerSchema) return false;
  RunManifest m;
  m.run_id = get_string(&root, "run_id");
  if (m.run_id.empty()) return false;
  m.program = get_string(&root, "program");
  m.width = static_cast<int>(get_number(&root, "width"));
  m.height = static_cast<int>(get_number(&root, "height"));
  m.threads = static_cast<int>(get_number(&root, "threads"));
  m.cycles = static_cast<std::uint64_t>(get_number(&root, "cycles"));
  m.outcome = get_string(&root, "outcome");
  m.deadlock = get_bool(&root, "deadlock");
  m.fault_total = static_cast<std::uint64_t>(get_number(&root, "fault_total"));
  if (const Value* env = root.find("env");
      env != nullptr && env->is_object()) {
    for (const auto& [name, value] : *env->object) {
      if (value.is_string()) m.env.emplace_back(name, value.string);
    }
  }
  if (const Value* metrics = root.find("metrics");
      metrics != nullptr && metrics->is_array()) {
    for (const Value& v : *metrics->array) {
      RunMetric metric;
      metric.name = get_string(&v, "name");
      metric.value = get_number(&v, "value");
      m.metrics.push_back(std::move(metric));
    }
  }
  if (const Value* artifacts = root.find("artifacts");
      artifacts != nullptr && artifacts->is_array()) {
    for (const Value& v : *artifacts->array) {
      RunArtifact a;
      a.kind = get_string(&v, "kind");
      a.path = get_string(&v, "path");
      m.artifacts.push_back(std::move(a));
    }
  }
  if (const Value* alerts = root.find("alerts");
      alerts != nullptr && alerts->is_array()) {
    for (const Value& v : *alerts->array) {
      RunAlert a;
      a.rule = get_string(&v, "rule");
      a.severity = get_string(&v, "severity");
      a.cycle = static_cast<std::uint64_t>(get_number(&v, "cycle"));
      m.alerts.push_back(std::move(a));
    }
  }
  *out = std::move(m);
  return true;
}

} // namespace

bool load_ledger(const std::string& path, Ledger* out, std::string* error) {
  const std::string file =
      is_directory(path) ? path + "/ledger.jsonl" : path;
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = file + ": cannot open file";
    return false;
  }
  Ledger ledger;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    RunManifest m;
    if (parse_manifest_line(line, &m)) {
      ledger.runs.push_back(std::move(m));
    } else {
      ++ledger.skipped_lines;
    }
  }
  if (in.bad()) {
    if (error != nullptr) *error = file + ": read error";
    return false;
  }
  *out = std::move(ledger);
  return true;
}

const RunManifest* find_run(const Ledger& ledger,
                            const std::string& id_or_prefix,
                            std::string* error) {
  const RunManifest* match = nullptr;
  for (const RunManifest& m : ledger.runs) {
    if (m.run_id == id_or_prefix) return &m; // exact beats prefix
  }
  std::size_t hits = 0;
  for (const RunManifest& m : ledger.runs) {
    if (m.run_id.rfind(id_or_prefix, 0) == 0) {
      match = &m;
      ++hits;
    }
  }
  if (hits == 1) return match;
  if (error != nullptr) {
    *error = hits == 0
                 ? "no run matches '" + id_or_prefix + "'"
                 : "'" + id_or_prefix + "' is ambiguous (" +
                       std::to_string(hits) + " runs match)";
  }
  return nullptr;
}

// --- rendering -----------------------------------------------------------

std::string pretty_manifest(const RunManifest& m) {
  std::ostringstream out;
  out << "run " << m.run_id << "\n";
  out << "  program:  " << (m.program.empty() ? "-" : m.program) << "\n";
  if (m.width > 0) {
    out << "  fabric:   " << m.width << "x" << m.height << ", " << m.threads
        << " sim thread(s)\n";
  }
  out << "  outcome:  " << (m.outcome.empty() ? "-" : m.outcome);
  if (m.deadlock) out << " (deadlock)";
  out << ", " << m.cycles << " cycles\n";
  if (m.fault_total > 0) {
    out << "  faults:   " << m.fault_total << " injected\n";
  }
  if (!m.alerts.empty()) {
    out << "  alerts:\n";
    for (const RunAlert& a : m.alerts) {
      out << "    [" << a.severity << "] " << a.rule;
      if (a.cycle > 0) out << " @c" << a.cycle;
      out << "\n";
    }
  }
  if (!m.metrics.empty()) {
    out << "  metrics:\n";
    for (const RunMetric& metric : m.metrics) {
      out << "    " << metric.name << " = " << json::number(metric.value)
          << "\n";
    }
  }
  if (!m.env.empty()) {
    out << "  env:\n";
    for (const auto& [name, value] : m.env) {
      out << "    " << name << "=" << value << "\n";
    }
  }
  if (!m.artifacts.empty()) {
    out << "  artifacts:\n";
    for (const RunArtifact& a : m.artifacts) {
      out << "    " << a.kind << ": " << a.path << "\n";
    }
  }
  return out.str();
}

std::string pretty_ledger_table(const Ledger& ledger) {
  std::ostringstream out;
  out << ledger.runs.size() << " run(s)";
  if (ledger.skipped_lines > 0) {
    out << " (" << ledger.skipped_lines << " unparseable line(s) skipped)";
  }
  out << "\n";
  if (ledger.runs.empty()) return out.str();
  std::size_t id_width = 6;
  for (const RunManifest& m : ledger.runs) {
    id_width = std::max(id_width, m.run_id.size());
  }
  char header[160];
  std::snprintf(header, sizeof(header), "%-*s  %-20s  %-9s  %10s  %s\n",
                static_cast<int>(id_width), "run id", "program", "outcome",
                "cycles", "artifacts");
  out << header;
  for (const RunManifest& m : ledger.runs) {
    std::string program = m.program.empty() ? "-" : m.program;
    if (program.size() > 20) program = program.substr(0, 17) + "...";
    char row[512];
    std::snprintf(row, sizeof(row), "%-*s  %-20s  %-9s  %10llu  %zu\n",
                  static_cast<int>(id_width), m.run_id.c_str(),
                  program.c_str(),
                  m.outcome.empty() ? "-" : m.outcome.c_str(),
                  static_cast<unsigned long long>(m.cycles),
                  m.artifacts.size());
    out << row;
  }
  return out.str();
}

std::string diff_manifests(const RunManifest& a, const RunManifest& b) {
  std::ostringstream out;
  out << "runs " << a.run_id << " vs " << b.run_id << "\n";
  if (a.program != b.program) {
    out << "  program:  '" << a.program << "' vs '" << b.program << "'\n";
  }
  if (a.outcome != b.outcome || a.deadlock != b.deadlock) {
    out << "  outcome:  " << a.outcome << (a.deadlock ? " (deadlock)" : "")
        << " vs " << b.outcome << (b.deadlock ? " (deadlock)" : "") << "\n";
  }
  if (a.cycles != b.cycles) {
    out << "  cycles:   " << a.cycles << " vs " << b.cycles << "\n";
  }
  if (a.threads != b.threads) {
    out << "  threads:  " << a.threads << " vs " << b.threads << "\n";
  }
  if (a.fault_total != b.fault_total) {
    out << "  faults:   " << a.fault_total << " vs " << b.fault_total << "\n";
  }
  if (a.alerts.size() != b.alerts.size()) {
    out << "  alerts:   " << a.alerts.size() << " vs " << b.alerts.size()
        << "\n";
  }

  bool metric_diffs = false;
  for (const RunMetric& ma : a.metrics) {
    const RunMetric* mb = b.metric(ma.name);
    if (mb != nullptr && mb->value == ma.value) continue;
    if (!metric_diffs) {
      out << "  metrics:\n";
      metric_diffs = true;
    }
    if (mb == nullptr) {
      out << "    " << ma.name << ": " << json::number(ma.value)
          << " vs (absent)\n";
    } else {
      out << "    " << ma.name << ": " << json::number(ma.value) << " vs "
          << json::number(mb->value) << " (" << (mb->value >= ma.value ? "+" : "")
          << json::number(mb->value - ma.value) << ")\n";
    }
  }
  for (const RunMetric& mb : b.metrics) {
    if (a.metric(mb.name) != nullptr) continue;
    if (!metric_diffs) {
      out << "  metrics:\n";
      metric_diffs = true;
    }
    out << "    " << mb.name << ": (absent) vs " << json::number(mb.value)
        << "\n";
  }

  const auto env_value =
      [](const RunManifest& m,
         const std::string& name) -> const std::string* {
    for (const auto& [n, v] : m.env) {
      if (n == name) return &v;
    }
    return nullptr;
  };
  bool env_diffs = false;
  const auto note_env = [&](const std::string& name, const std::string& va,
                            const std::string& vb) {
    if (!env_diffs) {
      out << "  env:\n";
      env_diffs = true;
    }
    out << "    " << name << ": " << va << " vs " << vb << "\n";
  };
  for (const auto& [name, value] : a.env) {
    const std::string* other = env_value(b, name);
    if (other == nullptr) {
      note_env(name, value, "(unset)");
    } else if (*other != value) {
      note_env(name, value, *other);
    }
  }
  for (const auto& [name, value] : b.env) {
    if (env_value(a, name) == nullptr) note_env(name, "(unset)", value);
  }

  const std::string rendered = out.str();
  if (rendered.find('\n') == rendered.size() - 1) {
    return rendered + "  identical (outcome, metrics, env)\n";
  }
  return rendered;
}

std::string pretty_trend(const Ledger& ledger, const std::string& metric) {
  std::vector<double> values;
  std::vector<const RunManifest*> runs;
  for (const RunManifest& m : ledger.runs) {
    const RunMetric* found = m.metric(metric);
    if (found == nullptr) continue;
    values.push_back(found->value);
    runs.push_back(&m);
  }
  std::ostringstream out;
  if (values.empty()) {
    out << "no run carries metric '" << metric << "'\n";
    return out.str();
  }
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  out << metric << " across " << values.size() << " run(s):\n";
  out << "  |" << sparkline(values, 60) << "|\n";
  out << "  min " << json::number(*lo) << ", max " << json::number(*hi)
      << ", latest " << json::number(values.back()) << " ("
      << runs.back()->run_id << ")\n";
  return out.str();
}

} // namespace wss::telemetry
