#include "mfix/assembly.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wss::mfix {

namespace {

/// Upwind pair: contribution of a CV face with mass flux F (positive =
/// outflow toward the neighbor in +direction is wrong; we use the
/// convention F > 0 means flow in the + coordinate direction).
double upwind_out(double flux) { return std::max(-flux, 0.0); } // a_{+}
double upwind_in(double flux) { return std::max(flux, 0.0); }   // a_{-}

struct MomentumGeometry {
  Grid3 unknowns;       ///< interior-face lattice
  int off_x, off_y, off_z; ///< unknown (a,b,c) -> face (a+off_x, ...)
};

MomentumGeometry geometry(const StaggeredGrid& g, Component comp) {
  switch (comp) {
    case Component::U: return {{g.nx - 1, g.ny, g.nz}, 1, 0, 0};
    case Component::V: return {{g.nx, g.ny - 1, g.nz}, 0, 1, 0};
    default: return {{g.nx, g.ny, g.nz - 1}, 0, 0, 1};
  }
}

} // namespace

AssembledSystem assemble_momentum(const StaggeredGrid& g,
                                  const FlowState& state,
                                  const FluidProps& props, Component comp,
                                  double dt, double alpha,
                                  const WallMotion& walls) {
  if (g.nx < 2 || g.ny < 2 || g.nz < 2) {
    throw std::invalid_argument("mesh too small for momentum assembly");
  }
  const MomentumGeometry geo = geometry(g, comp);
  AssembledSystem sys;
  sys.grid = geo.unknowns;
  sys.a = Stencil7<double>(geo.unknowns);
  sys.rhs = Field3<double>(geo.unknowns);
  sys.diag_coeff = Field3<double>(geo.unknowns);

  const double h = g.h;
  const double area = h * h;
  const double vol = h * h * h;
  const double D = props.mu * h; // diffusion conductance per face
  const double inertia = props.rho * vol / dt;

  const Field3<double>& u = state.u;
  const Field3<double>& v = state.v;
  const Field3<double>& w = state.w;
  const Field3<double>& p = state.p;
  OpCensus& c = sys.census;

  // The velocity field this component solves for, and its boundary value
  // on each tangential wall (only the z+ lid moves, in x).
  const Field3<double>& phi = comp == Component::U ? u
                              : comp == Component::V ? v
                                                     : w;

  for (int a = 0; a < geo.unknowns.nx; ++a) {
    for (int b = 0; b < geo.unknowns.ny; ++b) {
      for (int cc = 0; cc < geo.unknowns.nz; ++cc) {
        // Face index of this unknown.
        const int i = a + geo.off_x;
        const int j = b + geo.off_y;
        const int k = cc + geo.off_z;
        ++c.points;

        // Mass fluxes through the six faces of this component's control
        // volume, by averaging the transporting velocity component.
        double Fe, Fw, Fn, Fs, Ft, Fb;
        if (comp == Component::U) {
          Fe = props.rho * area * 0.5 * (u(i, j, k) + u(i + 1, j, k));
          Fw = props.rho * area * 0.5 * (u(i - 1, j, k) + u(i, j, k));
          Fn = props.rho * area * 0.5 * (v(i - 1, j + 1, k) + v(i, j + 1, k));
          Fs = props.rho * area * 0.5 * (v(i - 1, j, k) + v(i, j, k));
          Ft = props.rho * area * 0.5 * (w(i - 1, j, k + 1) + w(i, j, k + 1));
          Fb = props.rho * area * 0.5 * (w(i - 1, j, k) + w(i, j, k));
        } else if (comp == Component::V) {
          Fe = props.rho * area * 0.5 * (u(i + 1, j - 1, k) + u(i + 1, j, k));
          Fw = props.rho * area * 0.5 * (u(i, j - 1, k) + u(i, j, k));
          Fn = props.rho * area * 0.5 * (v(i, j, k) + v(i, j + 1, k));
          Fs = props.rho * area * 0.5 * (v(i, j - 1, k) + v(i, j, k));
          Ft = props.rho * area * 0.5 * (w(i, j - 1, k + 1) + w(i, j, k + 1));
          Fb = props.rho * area * 0.5 * (w(i, j - 1, k) + w(i, j, k));
        } else {
          Fe = props.rho * area * 0.5 * (u(i + 1, j, k - 1) + u(i + 1, j, k));
          Fw = props.rho * area * 0.5 * (u(i, j, k - 1) + u(i, j, k));
          Fn = props.rho * area * 0.5 * (v(i, j + 1, k - 1) + v(i, j + 1, k));
          Fs = props.rho * area * 0.5 * (v(i, j, k - 1) + v(i, j, k));
          Ft = props.rho * area * 0.5 * (w(i, j, k) + w(i, j, k + 1));
          Fb = props.rho * area * 0.5 * (w(i, j, k - 1) + w(i, j, k));
        }
        c.flops += 24;      // 6 fluxes x (1 add, 2 muls, ~1 scale)
        c.transports += 12; // neighbor velocity reads

        // Upwinded face coefficients.
        double aE = D + upwind_out(Fe);
        double aW = D + upwind_in(Fw);
        double aN = D + upwind_out(Fn);
        double aS = D + upwind_in(Fs);
        double aT = D + upwind_out(Ft);
        double aB = D + upwind_in(Fb);
        c.merges += 6; // the six max() upwind selections
        c.flops += 6;

        double rhs = inertia * phi(i, j, k);
        c.flops += 1;

        // Pressure-gradient source across this face.
        if (comp == Component::U) {
          rhs += area * (p(i - 1, j, k) - p(i, j, k));
        } else if (comp == Component::V) {
          rhs += area * (p(i, j - 1, k) - p(i, j, k));
        } else {
          rhs += area * (p(i, j, k - 1) - p(i, j, k));
        }
        c.flops += 3;
        c.transports += 2;

        // Fold Dirichlet/wall closures into the diagonal and rhs. Normal
        // neighbors beyond the unknown lattice are fixed boundary faces
        // (value = phi there). Tangential walls use the half-cell
        // diffusion conductance 2D to the wall velocity.
        auto wall_tangential = [&](double& coeff, double wall_value,
                                   double& rhs_acc) {
          // Replace the neighbor link by a wall link of strength 2D.
          rhs_acc += 2.0 * D * wall_value;
          coeff = -2.0 * D; // sentinel handled below: added to aP, no link
          c.flops += 2;
        };

        // Normal direction (the component's own axis): neighbors are
        // faces of the same lattice; the outermost are boundary faces with
        // known values (zero for all cavity walls).
        double cxp = 0.0, cxm = 0.0, cyp = 0.0, cym = 0.0, czp = 0.0,
               czm = 0.0;
        double aP_extra = 0.0;

        auto link = [&](int da, int db, int dc, double coeff, double& slot) {
          const int na = a + da;
          const int nb = b + db;
          const int nc = cc + dc;
          if (geo.unknowns.contains(na, nb, nc)) {
            slot = -coeff;
          } else {
            // Fixed neighbor: known value -> rhs.
            double value = 0.0;
            const int fi = i + da;
            const int fj = j + db;
            const int fk = k + dc;
            const bool is_normal_dir =
                (comp == Component::U && da != 0) ||
                (comp == Component::V && db != 0) ||
                (comp == Component::W && dc != 0);
            if (is_normal_dir) {
              value = phi(fi, fj, fk); // boundary face value (data)
              rhs += coeff * value;
              c.flops += 2;
            } else {
              // Tangential wall: lid if this is u at the z+ wall.
              double wall_value = 0.0;
              if (comp == Component::U && dc > 0 && k + 1 >= g.nz) {
                wall_value = walls.lid_u;
              }
              double dummy = 0.0;
              wall_tangential(dummy, wall_value, rhs);
              aP_extra += 2.0 * D - coeff; // swap link strength for 2D
            }
          }
        };

        link(1, 0, 0, aE, cxp);
        link(-1, 0, 0, aW, cxm);
        link(0, 1, 0, aN, cyp);
        link(0, -1, 0, aS, cym);
        link(0, 0, 1, aT, czp);
        link(0, 0, -1, aB, czm);

        double aP = aE + aW + aN + aS + aT + aB + inertia + aP_extra +
                    (Fe - Fw + Fn - Fs + Ft - Fb);
        c.flops += 12;

        // Implicit under-relaxation.
        const double aP_relaxed = aP / alpha;
        rhs += (aP_relaxed - aP) * phi(i, j, k);
        c.divides += 1;
        c.flops += 3;

        const std::size_t idx = geo.unknowns.index(a, b, cc);
        sys.a.diag[idx] = aP_relaxed;
        sys.a.xp[idx] = cxp;
        sys.a.xm[idx] = cxm;
        sys.a.yp[idx] = cyp;
        sys.a.ym[idx] = cym;
        sys.a.zp[idx] = czp;
        sys.a.zm[idx] = czm;
        sys.rhs[idx] = rhs;
        sys.diag_coeff[idx] = aP_relaxed;
      }
    }
  }
  return sys;
}

AssembledSystem assemble_pressure_correction(
    const StaggeredGrid& g, const FlowState& star, const FluidProps& props,
    const Field3<double>& du, const Field3<double>& dv,
    const Field3<double>& dw) {
  AssembledSystem sys;
  sys.grid = g.cells();
  sys.a = Stencil7<double>(sys.grid);
  sys.rhs = Field3<double>(sys.grid);
  sys.diag_coeff = Field3<double>(sys.grid);
  OpCensus& c = sys.census;

  const double h = g.h;
  const double area = h * h;
  const double rA = props.rho * area;

  for (int i = 0; i < g.nx; ++i) {
    for (int j = 0; j < g.ny; ++j) {
      for (int k = 0; k < g.nz; ++k) {
        ++c.points;
        // Face coupling coefficients rho*A*d_face; boundary faces carry no
        // correction.
        const double aE = rA * du(i + 1, j, k);
        const double aW = rA * du(i, j, k);
        const double aN = rA * dv(i, j + 1, k);
        const double aS = rA * dv(i, j, k);
        const double aT = rA * dw(i, j, k + 1);
        const double aB = rA * dw(i, j, k);
        c.flops += 6;
        c.transports += 6;

        double aP = aE + aW + aN + aS + aT + aB;
        c.flops += 5;

        // Mass imbalance of the starred field (inflow positive).
        const double imbalance =
            rA * (star.u(i, j, k) - star.u(i + 1, j, k) + star.v(i, j, k) -
                  star.v(i, j + 1, k) + star.w(i, j, k) - star.w(i, j, k + 1));
        c.flops += 6;
        c.transports += 6;

        // Pin the pressure level at the first cell (Neumann nullspace).
        if (i == 0 && j == 0 && k == 0) {
          aP += rA;
        }

        const std::size_t idx = sys.grid.index(i, j, k);
        sys.a.diag[idx] = aP;
        sys.a.xp[idx] = -aE;
        sys.a.xm[idx] = -aW;
        sys.a.yp[idx] = -aN;
        sys.a.ym[idx] = -aS;
        sys.a.zp[idx] = -aT;
        sys.a.zm[idx] = -aB;
        sys.rhs[idx] = imbalance;
        sys.diag_coeff[idx] = aP;
      }
    }
  }
  return sys;
}

double mass_imbalance(const StaggeredGrid& g, const FlowState& state,
                      const FluidProps& props) {
  double total = 0.0;
  const double rA = props.rho * g.h * g.h;
  for (int i = 0; i < g.nx; ++i) {
    for (int j = 0; j < g.ny; ++j) {
      for (int k = 0; k < g.nz; ++k) {
        const double div = rA * (state.u(i + 1, j, k) - state.u(i, j, k) +
                                 state.v(i, j + 1, k) - state.v(i, j, k) +
                                 state.w(i, j, k + 1) - state.w(i, j, k));
        total += std::abs(div);
      }
    }
  }
  return total;
}

} // namespace wss::mfix
