#include "mfix/simple.hpp"

#include "solver/stencil_operator.hpp"

namespace wss::mfix {

SimpleSolver::SimpleSolver(StaggeredGrid grid, FluidProps props,
                           WallMotion walls, SimpleOptions options)
    : grid_(grid), props_(props), walls_(walls), options_(options) {}

SolveResult SimpleSolver::solve(const AssembledSystem& sys, Field3<double>& x,
                                int max_iters) {
  // Diagonal preconditioning, exactly as the wafer solver requires. A
  // singular assembled diagonal is a classified breakdown, not a crash:
  // the guard in precondition_jacobi fires before any row is poisoned.
  Stencil7<double> a = sys.a;
  Field3<double> b = sys.rhs;
  Field3<double> b_pre(sys.grid);
  try {
    b_pre = precondition_jacobi(a, b);
  } catch (const SingularDiagonalError&) {
    SolveResult result;
    result.reason = StopReason::Breakdown;
    result.breakdown = BreakdownKind::SingularDiagonal;
    result.iterations = 0;
    return result;
  }
  Stencil7Operator<double> op(a);

  std::vector<double> xv(x.begin(), x.end());
  std::vector<double> bv(b_pre.begin(), b_pre.end());
  SolveControls controls;
  controls.max_iterations = max_iters;
  controls.tolerance = options_.solver_tolerance;
  const SolveResult result = bicgstab<DoublePrecision>(
      [&](std::span<const double> v, std::span<double> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const double>(bv), std::span<double>(xv), controls);
  for (std::size_t i = 0; i < xv.size(); ++i) x[i] = xv[i];
  return result;
}

SimpleIterationStats SimpleSolver::iterate(FlowState& state) {
  SimpleIterationStats stats;

  // --- Form and solve the three momentum equations (starred field) ---
  AssembledSystem su = assemble_momentum(grid_, state, props_, Component::U,
                                         options_.dt, options_.alpha_velocity,
                                         walls_);
  AssembledSystem sv = assemble_momentum(grid_, state, props_, Component::V,
                                         options_.dt, options_.alpha_velocity,
                                         walls_);
  AssembledSystem sw = assemble_momentum(grid_, state, props_, Component::W,
                                         options_.dt, options_.alpha_velocity,
                                         walls_);
  stats.formation_census = su.census;
  stats.formation_census.merges += sv.census.merges + sw.census.merges;
  stats.formation_census.flops += sv.census.flops + sw.census.flops;
  stats.formation_census.divides += sv.census.divides + sw.census.divides;
  stats.formation_census.sqrts += sv.census.sqrts + sw.census.sqrts;
  stats.formation_census.transports +=
      sv.census.transports + sw.census.transports;

  // Momentum residual before solving (how far the current field is from
  // satisfying its own implicit equation).
  auto residual_of = [](const AssembledSystem& sys, const Field3<double>& x0) {
    Field3<double> ax(sys.grid);
    spmv7(sys.a, x0, ax);
    double num = 0.0;
    double den = 1e-300;
    for (std::size_t i = 0; i < ax.size(); ++i) {
      const double r = sys.rhs[i] - ax[i];
      num += r * r;
      den += sys.rhs[i] * sys.rhs[i];
    }
    return std::sqrt(num / den);
  };

  // Extract current interior values as initial guesses.
  auto interior = [](const Field3<double>& f, Grid3 g, int ox, int oy,
                     int oz) {
    Field3<double> out(g);
    for (int a = 0; a < g.nx; ++a)
      for (int b = 0; b < g.ny; ++b)
        for (int c = 0; c < g.nz; ++c) out(a, b, c) = f(a + ox, b + oy, c + oz);
    return out;
  };
  Field3<double> xu = interior(state.u, su.grid, 1, 0, 0);
  Field3<double> xv = interior(state.v, sv.grid, 0, 1, 0);
  Field3<double> xw = interior(state.w, sw.grid, 0, 0, 1);

  stats.momentum_residual =
      residual_of(su, xu) + residual_of(sv, xv) + residual_of(sw, xw);

  const auto run_solve = [&](const AssembledSystem& sys, Field3<double>& x0,
                             int iters) {
    const SolveResult r = solve(sys, x0, iters);
    stats.solver_iterations += r.iterations;
    if (stats.breakdown == BreakdownKind::None &&
        r.reason == StopReason::Breakdown) {
      stats.breakdown = r.breakdown;
    }
  };
  run_solve(su, xu, options_.momentum_solver_iters);
  run_solve(sv, xv, options_.momentum_solver_iters);
  run_solve(sw, xw, options_.momentum_solver_iters);

  FlowState star = state;
  for (int a = 0; a < su.grid.nx; ++a)
    for (int b = 0; b < su.grid.ny; ++b)
      for (int c = 0; c < su.grid.nz; ++c) star.u(a + 1, b, c) = xu(a, b, c);
  for (int a = 0; a < sv.grid.nx; ++a)
    for (int b = 0; b < sv.grid.ny; ++b)
      for (int c = 0; c < sv.grid.nz; ++c) star.v(a, b + 1, c) = xv(a, b, c);
  for (int a = 0; a < sw.grid.nx; ++a)
    for (int b = 0; b < sw.grid.ny; ++b)
      for (int c = 0; c < sw.grid.nz; ++c) star.w(a, b, c + 1) = xw(a, b, c);

  // --- SIMPLE d-coefficients (area / aP) on interior faces ---
  const double area = grid_.h * grid_.h;
  Field3<double> du(grid_.u_faces(), 0.0);
  Field3<double> dv(grid_.v_faces(), 0.0);
  Field3<double> dw(grid_.w_faces(), 0.0);
  for (int a = 0; a < su.grid.nx; ++a)
    for (int b = 0; b < su.grid.ny; ++b)
      for (int c = 0; c < su.grid.nz; ++c)
        du(a + 1, b, c) = area / su.diag_coeff(a, b, c);
  for (int a = 0; a < sv.grid.nx; ++a)
    for (int b = 0; b < sv.grid.ny; ++b)
      for (int c = 0; c < sv.grid.nz; ++c)
        dv(a, b + 1, c) = area / sv.diag_coeff(a, b, c);
  for (int a = 0; a < sw.grid.nx; ++a)
    for (int b = 0; b < sw.grid.ny; ++b)
      for (int c = 0; c < sw.grid.nz; ++c)
        dw(a, b, c + 1) = area / sw.diag_coeff(a, b, c);

  // --- Continuity: pressure correction ---
  stats.mass_residual = mass_imbalance(grid_, star, props_);
  AssembledSystem sp =
      assemble_pressure_correction(grid_, star, props_, du, dv, dw);
  stats.formation_census.merges += sp.census.merges;
  stats.formation_census.flops += sp.census.flops;
  stats.formation_census.divides += sp.census.divides;
  stats.formation_census.transports += sp.census.transports;

  Field3<double> pc(grid_.cells(), 0.0);
  run_solve(sp, pc, options_.continuity_solver_iters);

  // --- Field update ---
  state = star;
  for (int a = 0; a < su.grid.nx; ++a)
    for (int b = 0; b < su.grid.ny; ++b)
      for (int c = 0; c < su.grid.nz; ++c)
        state.u(a + 1, b, c) += du(a + 1, b, c) * (pc(a, b, c) - pc(a + 1, b, c));
  for (int a = 0; a < sv.grid.nx; ++a)
    for (int b = 0; b < sv.grid.ny; ++b)
      for (int c = 0; c < sv.grid.nz; ++c)
        state.v(a, b + 1, c) += dv(a, b + 1, c) * (pc(a, b, c) - pc(a, b + 1, c));
  for (int a = 0; a < sw.grid.nx; ++a)
    for (int b = 0; b < sw.grid.ny; ++b)
      for (int c = 0; c < sw.grid.nz; ++c)
        state.w(a, b, c + 1) += dw(a, b, c + 1) * (pc(a, b, c) - pc(a, b, c + 1));
  for (std::size_t i = 0; i < state.p.size(); ++i) {
    state.p[i] += options_.alpha_pressure * pc[i];
  }
  return stats;
}

std::vector<SimpleIterationStats> SimpleSolver::run(FlowState& state, int n) {
  std::vector<SimpleIterationStats> stats;
  stats.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    stats.push_back(iterate(state));
  }
  return stats;
}

FlowState make_cavity_state(const StaggeredGrid& g, const WallMotion&) {
  // All fields start at rest; the lid enters through the tangential wall
  // boundary condition in the momentum assembly, not through face values.
  return FlowState(g);
}

} // namespace wss::mfix
