#pragma once

// Assembly of the SIMPLE linear systems: the three upwinded momentum
// equations on interior staggered faces and the pressure-correction
// (continuity) equation on cells. Assembly is instrumented with the
// operation census Table II reports (merge / flop / sqrt / divide /
// neighbor-transport counts per meshpoint).

#include "mfix/flow.hpp"
#include "stencil/stencil7.hpp"

namespace wss::mfix {

/// Operation census per meshpoint, Table II's columns. Counts accumulate
/// during assembly; divide by points assembled to get per-point figures.
struct OpCensus {
  std::uint64_t merges = 0;    ///< selects/min/max (upwind switches)
  std::uint64_t flops = 0;     ///< adds, subtracts, multiplies
  std::uint64_t sqrts = 0;
  std::uint64_t divides = 0;
  std::uint64_t transports = 0; ///< neighbor-value reads (xT in the table)
  std::uint64_t points = 0;

  [[nodiscard]] double per_point(std::uint64_t c) const {
    return points == 0 ? 0.0 : static_cast<double>(c) / static_cast<double>(points);
  }
  [[nodiscard]] double total_per_point() const {
    return per_point(merges + flops + sqrts + divides + transports);
  }
};

/// A momentum (or continuity) system: a 7-point matrix over the component's
/// interior unknowns, its rhs, and the census gathered while forming it.
struct AssembledSystem {
  Grid3 grid;           ///< interior unknown lattice
  Stencil7<double> a;
  Field3<double> rhs;
  Field3<double> diag_coeff; ///< unrelaxed central coefficients (for SIMPLE d)
  OpCensus census;
};

/// Assemble the implicit momentum equation for one velocity component:
/// transient (rho/dt) + upwind convection + diffusion, pressure-gradient
/// source from `state.p`, walls no-slip except the z+ lid moving at
/// `walls.lid_u` in x. Under-relaxation `alpha` is applied implicitly
/// (diag/alpha, rhs += (1-alpha)/alpha * diag * current value).
AssembledSystem assemble_momentum(const StaggeredGrid& g,
                                  const FlowState& state,
                                  const FluidProps& props, Component comp,
                                  double dt, double alpha,
                                  const WallMotion& walls);

/// Assemble the pressure-correction equation from the face mass imbalance
/// of the starred velocity field, with SIMPLE d-coefficients taken from
/// the momentum central coefficients.
AssembledSystem assemble_pressure_correction(
    const StaggeredGrid& g, const FlowState& star, const FluidProps& props,
    const Field3<double>& du, const Field3<double>& dv,
    const Field3<double>& dw);

/// Mass imbalance (continuity residual) of a state: sum |div(velocity)|
/// over cells, scaled by rho * h^2.
double mass_imbalance(const StaggeredGrid& g, const FlowState& state,
                      const FluidProps& props);

} // namespace wss::mfix
