#include "mfix/momentum_system.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace wss::mfix {

AssembledSystem make_momentum_system(const StaggeredGrid& g, double dt,
                                     std::uint64_t seed) {
  FlowState state(g);
  Rng rng(seed);

  // A smooth shear-like field with mild randomness: recirculating u, weak
  // v/w, and a linear-plus-wavy pressure — the flavor of a developing
  // cavity or channel flow partway through a time step.
  auto wavy = [&](double x, double y, double z, double a, double b,
                  double c) {
    return std::sin(a * x + 0.3) * std::cos(b * y) * std::sin(c * z + 0.7);
  };
  const double jitter_scale = 0.02;
  for (int i = 0; i < g.nx + 1; ++i)
    for (int j = 0; j < g.ny; ++j)
      for (int k = 0; k < g.nz; ++k)
        state.u(i, j, k) = 0.8 * wavy(0.05 * i, 0.02 * j, 0.05 * k, 1.0, 1.0, 1.0) +
                           jitter_scale * rng.uniform(-1.0, 1.0);
  for (int i = 0; i < g.nx; ++i)
    for (int j = 0; j < g.ny + 1; ++j)
      for (int k = 0; k < g.nz; ++k)
        state.v(i, j, k) = 0.3 * wavy(0.04 * i, 0.03 * j, 0.04 * k, 1.2, 0.8, 1.1) +
                           jitter_scale * rng.uniform(-1.0, 1.0);
  for (int i = 0; i < g.nx; ++i)
    for (int j = 0; j < g.ny; ++j)
      for (int k = 0; k < g.nz + 1; ++k)
        state.w(i, j, k) = 0.2 * wavy(0.03 * i, 0.05 * j, 0.03 * k, 0.9, 1.3, 1.0) +
                           jitter_scale * rng.uniform(-1.0, 1.0);
  for (int i = 0; i < g.nx; ++i)
    for (int j = 0; j < g.ny; ++j)
      for (int k = 0; k < g.nz; ++k)
        state.p(i, j, k) = 0.01 * i + 0.05 * wavy(0.06 * i, 0.04 * j, 0.06 * k,
                                                  1.0, 1.0, 1.0);

  FluidProps props;
  props.rho = 1.0;
  props.mu = 0.02;
  const WallMotion walls{0.0};
  return assemble_momentum(g, state, props, Component::U, dt, 1.0, walls);
}

} // namespace wss::mfix
