#pragma once

// Passive scalar (temperature/species) transport — the equations the
// paper's Section VI case study explicitly defers ("a single phase ...
// problem without energy and species equations") and lists as the next
// step toward full MFIX. Cell-centered implicit upwind discretization of
//   rho dθ/dt + div(rho u θ) = Γ ∇²θ + S
// on the staggered velocity field, with adiabatic (zero-flux) walls, solved
// by BiCGStab under the paper's 5-iteration transport cap.

#include "mfix/assembly.hpp"
#include "solver/bicgstab.hpp"

namespace wss::mfix {

struct ScalarTransportOptions {
  double gamma = 0.01;  ///< diffusivity Γ
  double dt = 0.1;
  double alpha = 1.0;   ///< under-relaxation (1 = none)
  int solver_iters = 5; ///< the paper's transport-equation cap
  double solver_tolerance = 1e-10;
};

/// Assemble the implicit transport system for cell scalar `theta` carried
/// by `state`'s face velocities. Walls are adiabatic (zero flux), so the
/// discrete operator is globally conservative. `source` may be empty (no
/// volumetric source).
AssembledSystem assemble_scalar_transport(const StaggeredGrid& g,
                                          const FlowState& state,
                                          const FluidProps& props,
                                          const Field3<double>& theta,
                                          const Field3<double>* source,
                                          const ScalarTransportOptions& opt);

/// Advance theta by one implicit step; returns BiCGStab iterations used.
/// When `result` is non-null it receives the full classified SolveResult —
/// a singular assembled diagonal comes back as StopReason::Breakdown with
/// BreakdownKind::SingularDiagonal (theta left untouched) instead of
/// poisoning the field.
int advance_scalar(const StaggeredGrid& g, const FlowState& state,
                   const FluidProps& props, Field3<double>& theta,
                   const Field3<double>* source,
                   const ScalarTransportOptions& opt,
                   SolveResult* result = nullptr);

/// Total scalar content sum(rho * theta * h^3) — conserved in a closed
/// adiabatic box without sources.
double scalar_content(const StaggeredGrid& g, const FluidProps& props,
                      const Field3<double>& theta);

} // namespace wss::mfix
