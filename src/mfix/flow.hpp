#pragma once

// A single-phase incompressible slice of MFIX: uniform staggered Cartesian
// mesh, SIMPLE pressure-velocity coupling (Algorithm 2), first-order upwind
// convection, BiCGStab inner solves with the paper's iteration caps (5 for
// transport equations, 20 for continuity). This is the application layer
// the paper projects onto the CS-1 in Section VI, and the source of the
// Fig. 9 momentum linear system.

#include "mesh/field.hpp"
#include "mesh/grid.hpp"

namespace wss::mfix {

/// Staggered arrangement: p at cell centers (nx,ny,nz); u at x-faces
/// (nx+1,ny,nz); v at y-faces (nx,ny+1,nz); w at z-faces (nx,ny,nz+1).
struct StaggeredGrid {
  int nx = 0, ny = 0, nz = 0;
  double h = 1.0; ///< uniform spacing

  [[nodiscard]] Grid3 cells() const { return {nx, ny, nz}; }
  [[nodiscard]] Grid3 u_faces() const { return {nx + 1, ny, nz}; }
  [[nodiscard]] Grid3 v_faces() const { return {nx, ny + 1, nz}; }
  [[nodiscard]] Grid3 w_faces() const { return {nx, ny, nz + 1}; }
};

struct FluidProps {
  double rho = 1.0;
  double mu = 0.01;
};

/// Velocity components and pressure. Boundary faces carry the boundary
/// values (no-slip zeros or the lid speed).
struct FlowState {
  Field3<double> u, v, w, p;

  explicit FlowState(const StaggeredGrid& g)
      : u(g.u_faces()), v(g.v_faces()), w(g.w_faces()), p(g.cells()) {}
};

/// Wall velocities: the tangential velocity of each of the six box walls
/// (x-,x+,y-,y+,z-,z+) in the x direction only — enough for lid-driven
/// cavity configurations (lid at z+ moving in +x by convention).
struct WallMotion {
  double lid_u = 1.0; ///< x velocity of the z+ wall
};

/// Which velocity component a momentum system solves for.
enum class Component { U, V, W };

} // namespace wss::mfix
