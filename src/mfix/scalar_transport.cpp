#include "mfix/scalar_transport.hpp"

#include <algorithm>

#include "solver/bicgstab.hpp"
#include "solver/stencil_operator.hpp"

namespace wss::mfix {

AssembledSystem assemble_scalar_transport(const StaggeredGrid& g,
                                          const FlowState& state,
                                          const FluidProps& props,
                                          const Field3<double>& theta,
                                          const Field3<double>* source,
                                          const ScalarTransportOptions& opt) {
  AssembledSystem sys;
  sys.grid = g.cells();
  sys.a = Stencil7<double>(sys.grid);
  sys.rhs = Field3<double>(sys.grid);
  sys.diag_coeff = Field3<double>(sys.grid);
  OpCensus& c = sys.census;

  const double h = g.h;
  const double area = h * h;
  const double vol = h * h * h;
  const double D = opt.gamma * h; // diffusive conductance per face
  const double inertia = props.rho * vol / opt.dt;

  for (int i = 0; i < g.nx; ++i) {
    for (int j = 0; j < g.ny; ++j) {
      for (int k = 0; k < g.nz; ++k) {
        ++c.points;
        // Face mass fluxes straight from the staggered velocities
        // (positive = flow in + direction). Boundary faces carry zero
        // velocity (impermeable), and walls are adiabatic: no diffusive
        // link either.
        const double Fe = props.rho * area * state.u(i + 1, j, k);
        const double Fw = props.rho * area * state.u(i, j, k);
        const double Fn = props.rho * area * state.v(i, j + 1, k);
        const double Fs = props.rho * area * state.v(i, j, k);
        const double Ft = props.rho * area * state.w(i, j, k + 1);
        const double Fb = props.rho * area * state.w(i, j, k);
        c.flops += 6;
        c.transports += 6;

        const bool has_e = i + 1 < g.nx;
        const bool has_w = i > 0;
        const bool has_n = j + 1 < g.ny;
        const bool has_s = j > 0;
        const bool has_t = k + 1 < g.nz;
        const bool has_b = k > 0;

        const double aE = has_e ? D + std::max(-Fe, 0.0) : 0.0;
        const double aW = has_w ? D + std::max(Fw, 0.0) : 0.0;
        const double aN = has_n ? D + std::max(-Fn, 0.0) : 0.0;
        const double aS = has_s ? D + std::max(Fs, 0.0) : 0.0;
        const double aT = has_t ? D + std::max(-Ft, 0.0) : 0.0;
        const double aB = has_b ? D + std::max(Fb, 0.0) : 0.0;
        c.merges += 6;
        c.flops += 6;

        // Conservative balance: aP = sum(a_nb) + inertia + net outflow
        // (zero for a solenoidal field; kept for stability).
        double aP = aE + aW + aN + aS + aT + aB + inertia +
                    (Fe - Fw + Fn - Fs + Ft - Fb);
        c.flops += 11;

        double rhs = inertia * theta(i, j, k);
        if (source != nullptr) {
          rhs += vol * (*source)(i, j, k);
          c.flops += 2;
        }
        c.flops += 1;

        const double aP_relaxed = aP / opt.alpha;
        rhs += (aP_relaxed - aP) * theta(i, j, k);
        c.divides += 1;
        c.flops += 3;

        const std::size_t idx = sys.grid.index(i, j, k);
        sys.a.diag[idx] = aP_relaxed;
        sys.a.xp[idx] = -aE;
        sys.a.xm[idx] = -aW;
        sys.a.yp[idx] = -aN;
        sys.a.ym[idx] = -aS;
        sys.a.zp[idx] = -aT;
        sys.a.zm[idx] = -aB;
        sys.rhs[idx] = rhs;
        sys.diag_coeff[idx] = aP_relaxed;
      }
    }
  }
  return sys;
}

int advance_scalar(const StaggeredGrid& g, const FlowState& state,
                   const FluidProps& props, Field3<double>& theta,
                   const Field3<double>* source,
                   const ScalarTransportOptions& opt, SolveResult* result) {
  AssembledSystem sys =
      assemble_scalar_transport(g, state, props, theta, source, opt);

  Stencil7<double> a = sys.a;
  Field3<double> b = sys.rhs;
  Field3<double> b_pre(sys.grid);
  try {
    b_pre = precondition_jacobi(a, b);
  } catch (const SingularDiagonalError&) {
    if (result != nullptr) {
      *result = SolveResult{};
      result->reason = StopReason::Breakdown;
      result->breakdown = BreakdownKind::SingularDiagonal;
    }
    return 0;
  }
  Stencil7Operator<double> op(a);

  std::vector<double> xv(theta.begin(), theta.end());
  std::vector<double> bv(b_pre.begin(), b_pre.end());
  SolveControls controls;
  controls.max_iterations = opt.solver_iters;
  controls.tolerance = opt.solver_tolerance;
  const SolveResult r = bicgstab<DoublePrecision>(
      [&](std::span<const double> v, std::span<double> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const double>(bv), std::span<double>(xv), controls);
  for (std::size_t i = 0; i < xv.size(); ++i) theta[i] = xv[i];
  if (result != nullptr) *result = r;
  return r.iterations;
}

double scalar_content(const StaggeredGrid& g, const FluidProps& props,
                      const Field3<double>& theta) {
  const double cell = props.rho * g.h * g.h * g.h;
  double total = 0.0;
  for (const double t : theta) total += cell * t;
  return total;
}

} // namespace wss::mfix
