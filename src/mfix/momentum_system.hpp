#pragma once

// Extraction of a standalone momentum linear system, the workload of the
// paper's precision study (Fig. 9): "a linear system from the timestep
// discretization (in the NETL code MFIX) of the momentum equation for a
// velocity component on a 100 x 400 x 100 mesh."

#include "mfix/assembly.hpp"

namespace wss::mfix {

/// Build a momentum system for component U on the given mesh, from a
/// smooth, nontrivial developing-flow state (deterministic in `seed`).
/// `dt` controls diagonal dominance: smaller steps give stronger diagonals
/// and faster BiCGStab convergence, like the well-conditioned systems the
/// paper studies.
AssembledSystem make_momentum_system(const StaggeredGrid& g, double dt,
                                     std::uint64_t seed);

} // namespace wss::mfix
