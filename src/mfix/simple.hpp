#pragma once

// The SIMPLE loop of MFIX's Algorithm 2: form and solve the three momentum
// equations, form and solve continuity (pressure correction), update the
// fields, compute residuals — with BiCGStab inner solves capped at the
// paper's limits (5 iterations for transport, 20 for continuity).

#include <vector>

#include "mfix/assembly.hpp"
#include "solver/bicgstab.hpp"

namespace wss::mfix {

struct SimpleOptions {
  double dt = 0.1;
  double alpha_velocity = 0.7; ///< implicit momentum under-relaxation
  double alpha_pressure = 0.3;
  int momentum_solver_iters = 5;   ///< the paper's transport cap
  int continuity_solver_iters = 20; ///< the paper's continuity cap
  double solver_tolerance = 1e-8;
};

struct SimpleIterationStats {
  double momentum_residual = 0.0; ///< pre-solve rhs imbalance, u+v+w
  double mass_residual = 0.0;     ///< continuity imbalance before correction
  int solver_iterations = 0;      ///< total BiCGStab iterations spent
  OpCensus formation_census;      ///< ops spent forming matrices
  /// First classified inner-solve breakdown this iteration (None when all
  /// solves were healthy). A singular assembled diagonal surfaces here as
  /// BreakdownKind::SingularDiagonal instead of poisoning the fields.
  BreakdownKind breakdown = BreakdownKind::None;
};

class SimpleSolver {
public:
  SimpleSolver(StaggeredGrid grid, FluidProps props, WallMotion walls,
               SimpleOptions options = {});

  /// One SIMPLE iteration (one pass of Algorithm 2's inner loop).
  SimpleIterationStats iterate(FlowState& state);

  /// Run `n` SIMPLE iterations; returns per-iteration stats.
  std::vector<SimpleIterationStats> run(FlowState& state, int n);

  [[nodiscard]] const StaggeredGrid& grid() const { return grid_; }
  [[nodiscard]] const SimpleOptions& options() const { return options_; }

private:
  /// Solve sys.a x = sys.rhs with BiCGStab (Jacobi-preconditioned, as on
  /// the wafer), starting from `x0`. A singular diagonal is caught and
  /// classified (StopReason::Breakdown / SingularDiagonal), leaving x
  /// untouched.
  SolveResult solve(const AssembledSystem& sys, Field3<double>& x,
                    int max_iters);

  StaggeredGrid grid_;
  FluidProps props_;
  WallMotion walls_;
  SimpleOptions options_;
};

/// Convenience: lid-driven cavity state with the lid velocity applied on
/// the z+ boundary faces of u and everything else at rest.
FlowState make_cavity_state(const StaggeredGrid& g, const WallMotion& walls);

} // namespace wss::mfix
