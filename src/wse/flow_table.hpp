#pragma once

// Logical-flow declarations for the network observatory (docs/NETWORK.md).
//
// The route compiler fixes, offline, which virtual channel (color) moves
// over which mesh link — so the same compilation step can also *declare*
// what each (outgoing direction, color) pair means: a halo-exchange leg, a
// wrap lane, an allreduce reduction or broadcast edge, an SpMV broadcast
// round. A FlowTable is that declaration: a total map from (mesh dir,
// color) to a named logical flow, with everything undeclared falling back
// to flow 0 ("control"). telemetry::NetMonitor folds its per-link ×
// per-color wavelet counters through this map to produce the per-flow
// rollups in `wss.timeseries/1` frames and the `wss.netflows/1` artifact.
//
// The map is intentionally fabric-global (not per-tile): the compiled
// route families below never reuse one (dir, color) pair for two
// different logical flows anywhere on the fabric, and the invariant tests
// (tests/wse/flow_table_test.cpp) hold the builders to that.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "wse/route_compiler.hpp"
#include "wse/types.hpp"

namespace wss::wse {

/// Index of the implicit fallback flow; always present, always first.
inline constexpr int kFlowControl = 0;

class FlowTable {
public:
  FlowTable() { map_.fill(static_cast<std::int16_t>(kFlowControl)); }

  /// Intern a flow name (idempotent); returns its index.
  int declare(const std::string& name) {
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      if (flows_[i] == name) return static_cast<int>(i);
    }
    flows_.push_back(name);
    return static_cast<int>(flows_.size() - 1);
  }

  /// Bind (dir, color) to `name`. Returns false — leaving the existing
  /// binding untouched — when the pair is already claimed by a *different*
  /// flow: the double-booking guard. Re-binding to the same flow is a
  /// no-op success. `dir` must be a mesh direction (not Ramp).
  bool bind(Dir dir, Color color, const std::string& name) {
    const int idx = declare(name);
    std::int16_t& cell = map_[cell_index(dir, color)];
    if (cell != kFlowControl && cell != idx) return false;
    cell = static_cast<std::int16_t>(idx);
    return true;
  }

  /// The flow carried by `color` over mesh links in `dir`.
  [[nodiscard]] int flow_at(Dir dir, Color color) const {
    return map_[cell_index(dir, color)];
  }

  [[nodiscard]] const std::string& flow_name(int idx) const {
    return flows_[static_cast<std::size_t>(idx)];
  }
  /// Declared flow names, index-aligned with flow_at(); [0] is "control".
  [[nodiscard]] const std::vector<std::string>& flows() const {
    return flows_;
  }
  [[nodiscard]] int flow_count() const {
    return static_cast<int>(flows_.size());
  }

  [[nodiscard]] bool operator==(const FlowTable& o) const {
    return flows_ == o.flows_ && map_ == o.map_;
  }

private:
  [[nodiscard]] static std::size_t cell_index(Dir dir, Color color) {
    return static_cast<std::size_t>(dir) * kNumColors +
           static_cast<std::size_t>(color);
  }

  std::vector<std::string> flows_ = {"control"};
  /// Mesh dirs only (N/S/E/W); Ramp traffic never crosses a link.
  std::array<std::int16_t, 4 * kNumColors> map_{};
};

// --- builders, one per compiled route family ------------------------------
// Colors and directions mirror route_compiler.cpp exactly; a route-compiler
// change that moves a flow onto a new (dir, color) pair must update the
// matching builder (the conservation self-check only needs the map to be
// total, but flow *attribution* is only as truthful as this mirror).

/// Fig. 5 tessellation broadcast: colors 0..4 eastbound/westbound are the
/// x-round ("spmv.x"), northbound/southbound the y-round ("spmv.y").
[[nodiscard]] FlowTable spmv_flow_table();

/// Fig. 6 reduction tree on `base`: row/column/quad/final legs fold into
/// "allreduce<suffix>.reduce", the broadcast color into
/// "allreduce<suffix>.bcast".
void add_allreduce_flows(FlowTable& table, Color base = kAllReduceBase,
                         const std::string& suffix = "");

/// The BiCGStab program's full palette: SpMV rounds plus both concurrent
/// reduction trees (kAllReduceBase and kAllReduceBase2).
[[nodiscard]] FlowTable bicgstab_flow_table();

/// Generic stencil front-end halo exchange: parity legs "halo.E/W/S/N"
/// (colors 0..7) plus, when `periodic`, the dedicated wrap lanes
/// "wrap.E/W/S/N" on colors 18..21.
[[nodiscard]] FlowTable stencilfe_flow_table(bool periodic);

} // namespace wss::wse
