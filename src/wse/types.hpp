#pragma once

// Basic vocabulary of the wafer-scale-engine simulator: directions on the
// 2D fabric, fabric word payloads, data types, and task-control actions.

#include <array>
#include <cstdint>

namespace wss::wse {

/// Link directions out of / into a router. Ramp is the router<->core port.
enum class Dir : std::uint8_t { North = 0, South = 1, East = 2, West = 3, Ramp = 4 };
inline constexpr int kNumDirs = 5;
inline constexpr std::array<Dir, 4> kMeshDirs = {Dir::North, Dir::South,
                                                 Dir::East, Dir::West};

[[nodiscard]] constexpr Dir opposite(Dir d) {
  switch (d) {
    case Dir::North: return Dir::South;
    case Dir::South: return Dir::North;
    case Dir::East: return Dir::West;
    case Dir::West: return Dir::East;
    case Dir::Ramp: return Dir::Ramp;
  }
  return Dir::Ramp;
}

[[nodiscard]] constexpr const char* to_string(Dir d) {
  switch (d) {
    case Dir::North: return "N";
    case Dir::South: return "S";
    case Dir::East: return "E";
    case Dir::West: return "W";
    case Dir::Ramp: return "ramp";
  }
  return "?";
}

/// Displacement of one hop in direction d, in fabric coordinates where x
/// grows east and y grows south.
[[nodiscard]] constexpr std::array<int, 2> step(Dir d) {
  switch (d) {
    case Dir::North: return {0, -1};
    case Dir::South: return {0, 1};
    case Dir::East: return {1, 0};
    case Dir::West: return {-1, 0};
    case Dir::Ramp: return {0, 0};
  }
  return {0, 0};
}

/// Virtual-channel id ("color" in the paper's Fig. 5). The WSE routers
/// support a set of virtual channels; we allow up to 24.
using Color = std::uint8_t;
inline constexpr int kNumColors = 24;

/// A word in flight on the fabric: a raw payload (fp16 in the low half, or
/// a full fp32 bit pattern) tagged with its color. Links are 32 bits wide
/// (the AllReduce moves one fp32 word per cycle per link), so a `wide`
/// fp32 flit consumes a full link-cycle while two narrow fp16 flits share
/// one — the packing that gives the fabric its 16 B/cycle injection rate.
///
/// Each flit also carries its provenance — the tile and cycle at which the
/// core injected it. The simulator (not the modeled hardware) uses this to
/// record wavelet dependency edges for the critical-path analyzer
/// (docs/PROFILING.md); it has no effect on simulated behaviour.
struct Flit {
  std::uint32_t payload = 0;
  Color color = 0;
  bool wide = false;
  std::int16_t src_x = -1;      ///< injecting tile (simulator provenance)
  std::int16_t src_y = -1;
  std::uint32_t src_cycle = 0;  ///< fabric cycle of injection
};

/// Element types the datapath distinguishes.
enum class DType : std::uint8_t { F16, F32 };

[[nodiscard]] constexpr int halfwords(DType t) {
  return t == DType::F16 ? 1 : 2;
}

/// Task identifiers are indices into the tile program's task table.
using TaskId = int;
inline constexpr TaskId kNoTask = -1;

/// What an instruction's completion (or a FIFO push) does to a task,
/// mirroring the paper's .trig/.act descriptor fields.
enum class TrigAction : std::uint8_t { None, Activate, Unblock };

/// Program phase, for cycle attribution (docs/PROFILING.md). Tile programs
/// declare their current phase with free TaskStep::Kind::SetPhase control
/// steps; the core keeps the value sticky until the next marker, so every
/// cycle — compute, stall, or idle — lands in exactly one phase bin. The
/// bins mirror the paper's per-iteration breakdown: streamed SpMV, local
/// dot products, AXPY-family vector updates, the fabric AllReduce, and
/// everything else (scalar recurrence, task bookkeeping) as Control.
enum class ProgPhase : std::uint8_t {
  Control = 0,
  SpMV = 1,
  Dot = 2,
  Axpy = 3,
  AllReduce = 4,
};
inline constexpr int kNumProgPhases = 5;

[[nodiscard]] constexpr const char* to_string(ProgPhase p) {
  switch (p) {
    case ProgPhase::Control: return "control";
    case ProgPhase::SpMV: return "spmv";
    case ProgPhase::Dot: return "dot";
    case ProgPhase::Axpy: return "axpy";
    case ProgPhase::AllReduce: return "allreduce";
  }
  return "?";
}

} // namespace wss::wse
