#pragma once

// Execution tracing for the fabric simulator: a bounded event recorder the
// fabric (optionally) feeds with task starts, instruction completions, and
// per-cycle occupancy samples, plus a text renderer that shows what a tile
// did cycle by cycle — the tool we used to find the virtual-channel
// head-of-line deadlock, kept as a first-class debugging surface.

#include <cstdint>
#include <string>
#include <vector>

#include "wse/types.hpp"

namespace wss::wse {

enum class TraceEventKind : std::uint8_t {
  TaskStart,      ///< scheduler picked a task
  TaskEnd,        ///< task body exhausted
  InstrComplete,  ///< an instruction retired
  Stall,          ///< datapath had work but nothing could advance
  Fault,          ///< an injected fault fired (see wse/fault.hpp)
};

struct TraceEvent {
  std::uint64_t cycle = 0;
  int tile_x = 0;
  int tile_y = 0;
  TraceEventKind kind{};
  /// Task name for task events; opcode index for instruction events.
  std::string label;
};

/// Bounded in-memory trace. When full, new events are dropped and counted
/// (a trace is a magnifier, not a flight recorder).
class Tracer {
public:
  explicit Tracer(std::size_t capacity = 1 << 16) : capacity_(capacity) {}

  void record(std::uint64_t cycle, int x, int y, TraceEventKind kind,
              std::string label) {
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back({cycle, x, y, kind, std::move(label)});
  }

  /// Restrict recording to one tile (-1, -1 = all tiles).
  void focus(int x, int y) {
    focus_x_ = x;
    focus_y_ = y;
  }
  [[nodiscard]] bool wants(int x, int y) const {
    return (focus_x_ < 0 || focus_x_ == x) && (focus_y_ < 0 || focus_y_ == y);
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Render a human-readable timeline, optionally limited to `max_lines`.
  [[nodiscard]] std::string render(std::size_t max_lines = 200) const;

  /// Events of one kind (e.g. count the task switches of a run).
  [[nodiscard]] std::size_t count(TraceEventKind kind) const;

private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::size_t dropped_ = 0;
  int focus_x_ = -1;
  int focus_y_ = -1;
};

[[nodiscard]] const char* to_string(TraceEventKind kind);

} // namespace wss::wse
