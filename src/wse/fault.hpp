#pragma once

// Seeded, deterministic fault injection for the fabric simulator: a
// FaultPlan describes link faults (dropped or bit-corrupted wavelets),
// transiently stalled routers, and dead tiles; the Fabric executes the
// plan during its route/core/link phases, counts every injection
// (FaultStats + per-tile counters feeding the telemetry heatmaps), and
// keeps a bounded, band-order-deterministic event log.
//
// Determinism contract (the PR-2 banded contract extended to faults): a
// fault decision depends only on (plan seed, link coordinates, per-link
// wavelet ordinal, cycle window) — all state owned by the source tile's
// row band — so an injected run is bit-reproducible at any host thread
// count, including the fault log and every trace event. See
// docs/ROBUSTNESS.md.

#include <cstdint>
#include <limits>
#include <vector>

#include "wse/types.hpp"

namespace wss::wse {

/// Sentinel for "window never closes" / "tile never dies".
inline constexpr std::uint64_t kFaultForever =
    std::numeric_limits<std::uint64_t>::max();

enum class FaultKind : std::uint8_t {
  DropWavelet,     ///< a wavelet leaves the source link and never arrives
  CorruptWavelet,  ///< payload bits are XOR-flipped in flight
  StallRouter,     ///< router forwards nothing during the window
  DeadTile,        ///< core stops executing from a given cycle on
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// A fault on one outgoing link (source tile (x, y), direction `dir`).
/// Each wavelet that traverses the link during [from_cycle, until_cycle)
/// is dropped/corrupted with `probability`, decided by a deterministic
/// per-wavelet roll derived from the plan seed (see fault_roll).
struct LinkFault {
  int x = 0;
  int y = 0;
  Dir dir = Dir::East;
  FaultKind kind = FaultKind::DropWavelet;  ///< DropWavelet or CorruptWavelet
  double probability = 1.0;
  std::uint64_t from_cycle = 0;
  std::uint64_t until_cycle = kFaultForever;  ///< exclusive
  /// XOR mask applied to the 32-bit payload for CorruptWavelet. The
  /// default flips the top mantissa bit of an fp16 in the low halfword.
  std::uint32_t corrupt_mask = 0x0200u;
};

/// Router at (x, y) forwards nothing during [from_cycle, until_cycle):
/// arriving wavelets queue up (backpressure), nothing is lost.
struct RouterStallFault {
  int x = 0;
  int y = 0;
  std::uint64_t from_cycle = 0;
  std::uint64_t until_cycle = kFaultForever;  ///< exclusive
};

/// Core at (x, y) stops executing from `from_cycle` on. Its router keeps
/// forwarding (a datapath death, not a routing death).
struct DeadTileFault {
  int x = 0;
  int y = 0;
  std::uint64_t from_cycle = 0;
};

/// A deterministic, seeded fault-injection plan for one fabric.
/// Attach with Fabric::set_fault_plan; the plan must outlive its use.
struct FaultPlan {
  std::uint64_t seed = 1;  ///< drives every probabilistic link-fault roll
  std::vector<LinkFault> link_faults;
  std::vector<RouterStallFault> router_stalls;
  std::vector<DeadTileFault> dead_tiles;

  [[nodiscard]] bool empty() const {
    return link_faults.empty() && router_stalls.empty() &&
           dead_tiles.empty();
  }
};

/// Fabric-wide injection counters (cheap always-on increments while a
/// plan is attached; untouched otherwise).
struct FaultStats {
  std::uint64_t wavelets_dropped = 0;
  std::uint64_t wavelets_corrupted = 0;
  std::uint64_t router_stall_cycles = 0;  ///< stalled-router tile-cycles
  std::uint64_t dead_tile_cycles = 0;     ///< dead-core tile-cycles

  [[nodiscard]] std::uint64_t total() const {
    return wavelets_dropped + wavelets_corrupted + router_stall_cycles +
           dead_tile_cycles;
  }
  FaultStats& operator+=(const FaultStats& o) {
    wavelets_dropped += o.wavelets_dropped;
    wavelets_corrupted += o.wavelets_corrupted;
    router_stall_cycles += o.router_stall_cycles;
    dead_tile_cycles += o.dead_tile_cycles;
    return *this;
  }
  bool operator==(const FaultStats&) const = default;
};

/// One injected fault occurrence. Stall/dead faults log a single event at
/// window start; per-wavelet faults log one event each (until the bounded
/// log fills; see Fabric::fault_log_dropped).
struct FaultEvent {
  std::uint64_t cycle = 0;
  int x = 0;
  int y = 0;
  Dir dir = Dir::Ramp;  ///< Ramp for non-link faults
  FaultKind kind{};
  std::uint32_t payload_before = 0;  ///< link faults only
  std::uint32_t payload_after = 0;   ///< corrupted payload (0 for drops)

  bool operator==(const FaultEvent&) const = default;
};

/// Deterministic per-wavelet roll in [0, 1): a pure SplitMix64-style hash
/// of (seed, x, y, dir, ordinal). Host-thread-count independent because
/// the ordinal is the wavelet's position in its own link's traffic, which
/// only the source tile's band observes.
[[nodiscard]] double fault_roll(std::uint64_t seed, int x, int y, Dir dir,
                                std::uint64_t ordinal);

} // namespace wss::wse
