#pragma once

// Turbo execution backend: SoA occupancy/parking state (docs/BACKENDS.md).
//
// The reference interpreter walks every tile's full object graph every
// cycle — 4 directions x 24 colors of (mostly empty) virtual-channel
// deques per router phase plus a scheduler pass per core — which makes the
// simulator memory-bound on queue metadata long before any real work
// happens. After the route compiler runs the fabric's steady state is
// static: almost every queue is empty and almost every core is either
// computing or provably idle. The turbo backend exploits exactly that and
// nothing else:
//
//   * RouterState keeps per-direction occupancy bitmasks (one bit per
//     color, maintained unconditionally by both backends), so the turbo
//     route/link phases visit only queues that hold flits;
//   * this TurboState mirrors the per-tile facts the phases need for their
//     skip tests into dense byte arrays — the Tile array itself has a
//     multi-KB stride, so per-tile loads through it are cache misses;
//   * cores in the absorbing idle state (no occupied slot, no runnable
//     task, empty ramp queues — deliveries never activate tasks, so such a
//     core cannot wake itself) are parked: their step is exactly
//     TileCore::step_parked(), one idle-cycle increment.
//
// None of this changes semantics: the active-tile code paths are the
// reference code paths, turbo only skips work whose effect is provably
// nothing. Bit-identity against the reference backend — result bits,
// cycle counts, heatmaps, every counter, at any thread count — is
// enforced by tests/wse/backend_conformance_test.cpp.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace wss::wse {

/// Host-side bookkeeping counters of the turbo backend itself (how it ran,
/// never what it simulated — simulated results are backend-invariant).
struct TurboStats {
  /// Times the SoA mirror was (re)built from fabric state: the first turbo
  /// step, and every turbo step after an invalidation (demotion,
  /// reset_control, configure_tile, set_backend).
  std::uint64_t promotions = 0;
  /// Times a live turbo fabric fell back to the reference phases because a
  /// demotion trigger (tracer, profiler, flight recorder, sampler,
  /// watchdog, fault plan) was attached.
  std::uint64_t demotions = 0;
  /// Cycles stepped by the turbo fast path.
  std::uint64_t turbo_cycles = 0;
  /// Core steps satisfied by parking (one per parked tile per turbo cycle).
  std::uint64_t parked_tile_cycles = 0;
  /// Backpressure events in the turbo route phase (a flit held in its
  /// virtual channel because a forward queue or ramp was full) — the
  /// "contention slow path" taken per tile, with reference semantics.
  std::uint64_t contended_tile_cycles = 0;
};

/// Dense SoA mirror of the per-tile facts the turbo phases test before
/// touching a tile. Allocated on first promotion, rebuilt (cheaply, from
/// the always-exact occupancy masks) whenever `live` was dropped.
struct TurboState {
  explicit TurboState(std::size_t tiles)
      : configured(tiles, 0), parked(tiles, 0), done(tiles, 0),
        link_pending(tiles, 0),
        route_pending(new std::atomic<std::uint8_t>[tiles]) {
    for (std::size_t i = 0; i < tiles; ++i) {
      route_pending[i].store(0, std::memory_order_relaxed);
    }
  }

  /// True while the mirror matches fabric state; dropped by any structural
  /// mutation or demotion, re-established by the next promotion.
  bool live = false;
  TurboStats stats;

  std::vector<std::uint8_t> configured; ///< tile has a core
  std::vector<std::uint8_t> parked;     ///< core is in the absorbing idle state
  std::vector<std::uint8_t> done;       ///< core's done flag (frozen while parked)
  std::vector<std::uint8_t> link_pending; ///< any out_queue holds a flit
  /// Any in_queue holds a flit. Atomic (relaxed) because during the link
  /// phase several source tiles — possibly in different row bands — mark
  /// the same destination tile; all writers store 1, so ordering is
  /// irrelevant, but the bytes must not race.
  std::unique_ptr<std::atomic<std::uint8_t>[]> route_pending;

  /// Per-band counter staging, reduced in band order after each step so
  /// TurboStats is bit-identical at any thread count.
  struct BandCounters {
    std::uint64_t parked = 0;
    std::uint64_t contended = 0;
  };
  std::vector<BandCounters> band;
};

} // namespace wss::wse
