#pragma once

// The fabric: a 2D array of tiles (core + router), stepped cycle by cycle.
// Each cycle has three deterministic phases:
//   1. route  — words in input latches are forwarded per the routing rules
//               (multicast fanout happens here, with backpressure),
//   2. core   — every core runs one datapath/scheduler cycle and may inject,
//   3. link   — each output link moves one word into the neighbor's latch.
// This yields one-word-per-link-per-cycle bandwidth and ~1 cycle/hop
// latency, the paper's stated fabric characteristics.

#include <cstdint>
#include <memory>
#include <vector>

#include "wse/core.hpp"

namespace wss::wse {

struct FabricStats {
  std::uint64_t cycles = 0;
  std::uint64_t link_transfers = 0;

  [[nodiscard]] double seconds(const CS1Params& arch) const {
    return static_cast<double>(cycles) / arch.clock_hz;
  }
};

class Fabric {
public:
  Fabric(int width, int height, const CS1Params& arch, const SimParams& sim);

  /// Install a tile's program and routing table. Must be called for every
  /// tile before running. Coordinates: x east, y south.
  void configure_tile(int x, int y, TileProgram program, RoutingTable routes);

  [[nodiscard]] TileCore& core(int x, int y) {
    return *tiles_[tile_index(x, y)].core;
  }
  [[nodiscard]] const TileCore& core(int x, int y) const {
    return *tiles_[tile_index(x, y)].core;
  }
  /// True once configure_tile was called for (x, y).
  [[nodiscard]] bool has_core(int x, int y) const {
    return tiles_[tile_index(x, y)].core != nullptr;
  }
  /// Per-router activity counters (telemetry heatmaps).
  [[nodiscard]] const RouterStats& router_stats(int x, int y) const {
    return tiles_[tile_index(x, y)].router.stats;
  }

  /// Advance one cycle.
  void step();

  /// Run until every tile raised its done flag, the whole fabric went
  /// quiescent, or `max_cycles` elapsed. Returns cycles executed.
  std::uint64_t run(std::uint64_t max_cycles);

  [[nodiscard]] bool all_done() const;
  [[nodiscard]] bool quiescent() const;
  [[nodiscard]] const FabricStats& stats() const { return stats_; }
  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  /// Reset per-run control state (descriptors, tasks, stats) on every tile
  /// so the loaded data can be reused for another kernel invocation.
  void reset_control();

  /// Attach an execution tracer to every configured tile (nullptr
  /// detaches). Use Tracer::focus to limit recording to one tile.
  void set_tracer(Tracer* tracer);

private:
  struct Tile {
    std::unique_ptr<TileCore> core;
    RouterState router;
  };

  [[nodiscard]] std::size_t tile_index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }
  [[nodiscard]] bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  void route_phase();
  void link_phase();

  int width_;
  int height_;
  const CS1Params* arch_;
  SimParams sim_;
  std::vector<Tile> tiles_;
  FabricStats stats_;
};

} // namespace wss::wse
