#pragma once

// The fabric: a 2D array of tiles (core + router), stepped cycle by cycle.
// Each cycle has three deterministic phases:
//   1. route  — words in input latches are forwarded per the routing rules
//               (multicast fanout happens here, with backpressure),
//   2. core   — every core runs one datapath/scheduler cycle and may inject,
//   3. link   — each output link moves one word into the neighbor's latch.
// This yields one-word-per-link-per-cycle bandwidth and ~1 cycle/hop
// latency, the paper's stated fabric characteristics.
//
// Host-side parallelism: within each phase, every tile reads only its own
// state plus queues it uniquely owns (the link phase writes a neighbor's
// per-direction input queue, which no other tile — including the neighbor
// itself — touches during that phase), so the phases are data-parallel over
// tiles. step() shards the grid into contiguous row bands across a
// persistent thread pool with a barrier between phases; fabric-global
// counters are accumulated per band and reduced in band order, and tracer
// events are staged per band and merged in band order, so a parallel run is
// bit-identical to a serial one for any thread count (the determinism
// contract in docs/SIMULATOR.md, enforced by
// tests/wse/parallel_conformance_test.cpp).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "wse/core.hpp"
#include "wse/fault.hpp"
#include "wse/sim_pool.hpp"
#include "wse/turbo_backend.hpp"

namespace wss::telemetry {
class Profiler;          // telemetry/profiler.hpp (header-only surface)
class FlightRecorder;    // telemetry/flightrec.hpp (header-only surface)
class TimeSeriesSampler; // telemetry/timeseries.hpp (header-only surface)
struct TimeSeriesSample;
class NetMonitor;        // telemetry/netmon.hpp (header-only surface)
}

namespace wss::wse {

struct FabricStats {
  std::uint64_t cycles = 0;
  std::uint64_t link_transfers = 0;

  [[nodiscard]] double seconds(const CS1Params& arch) const {
    return static_cast<double>(cycles) / arch.clock_hz;
  }
};

/// Why Fabric::run returned, with the forensics a deadlock investigation
/// needs. run() used to return a bare cycle count, losing the reason —
/// a deadlocked fabric and a finished one looked identical to the caller.
struct StopInfo {
  enum class Reason : std::uint8_t {
    AllDone = 0,   ///< every tile raised its done flag
    Quiescent = 1, ///< nothing left in flight (but not all done: stuck)
    MaxCycles = 2, ///< the cycle budget elapsed
    Watchdog = 3,  ///< the no-progress watchdog fired (see set_watchdog)
  };
  Reason reason = Reason::MaxCycles;
  /// Cycles executed by this run() call.
  std::uint64_t cycles = 0;
  /// True when the fabric stopped with unfinished work it can (Watchdog,
  /// Quiescent) or may (stalled at MaxCycles) never finish.
  bool deadlock = false;
  /// Cycles since the last observed progress (watchdog stops only).
  std::uint64_t stalled_cycles = 0;
  /// Tiles with unfinished work at stop time, row-major, capped at
  /// kMaxBlockedTiles (deadlock stops only).
  std::vector<std::pair<int, int>> blocked_tiles;
  /// Human-readable watchdog report: per-tile debug_state() of the first
  /// blocked tiles (deadlock stops only).
  std::string report;

  [[nodiscard]] static const char* to_string(Reason r) {
    switch (r) {
      case Reason::AllDone: return "all_done";
      case Reason::Quiescent: return "quiescent";
      case Reason::MaxCycles: return "max_cycles";
      case Reason::Watchdog: return "watchdog";
    }
    return "?";
  }
};

class Fabric {
public:
  Fabric(int width, int height, const CS1Params& arch, const SimParams& sim);
  ~Fabric();
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;
  Fabric(Fabric&&) noexcept = default;
  Fabric& operator=(Fabric&&) noexcept = default;

  /// Install a tile's program and routing table. Must be called for every
  /// tile before running. Coordinates: x east, y south.
  void configure_tile(int x, int y, TileProgram program, RoutingTable routes);

  [[nodiscard]] TileCore& core(int x, int y) {
    return *tiles_[tile_index(x, y)].core;
  }
  [[nodiscard]] const TileCore& core(int x, int y) const {
    return *tiles_[tile_index(x, y)].core;
  }
  /// True once configure_tile was called for (x, y).
  [[nodiscard]] bool has_core(int x, int y) const {
    return tiles_[tile_index(x, y)].core != nullptr;
  }
  /// Per-router activity counters (telemetry heatmaps).
  [[nodiscard]] const RouterStats& router_stats(int x, int y) const {
    return tiles_[tile_index(x, y)].router.stats;
  }
  /// Full router-side state of tile (x, y) — read-only introspection for
  /// the post-mortem wait-for graph (queue occupancy + routing rules).
  [[nodiscard]] const RouterState& router_state(int x, int y) const {
    return tiles_[tile_index(x, y)].router;
  }

  /// Advance one cycle.
  void step();

  /// Run until every tile raised its done flag, the whole fabric went
  /// quiescent, the no-progress watchdog fired (see set_watchdog), or
  /// `max_cycles` elapsed. The StopInfo says which, with blocked-tile
  /// forensics attached on deadlock stops.
  StopInfo run(std::uint64_t max_cycles);

  [[nodiscard]] bool all_done() const;
  [[nodiscard]] bool quiescent() const;
  [[nodiscard]] const FabricStats& stats() const { return stats_; }
  [[nodiscard]] const SimParams& sim_params() const { return sim_; }
  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  /// Reset per-run control state (descriptors, tasks, stats) on every tile
  /// so the loaded data can be reused for another kernel invocation.
  void reset_control();

  /// Attach an execution tracer to every configured tile (nullptr
  /// detaches). Use Tracer::focus to limit recording to one tile. When the
  /// fabric steps in parallel, core events are staged into per-band
  /// buffers and merged into `tracer` in serial (row-major) order at the
  /// end of each core phase, so the recorded stream — including capacity
  /// drops — is bit-identical to a serial run.
  void set_tracer(Tracer* tracer);

  /// Override the host-side simulation thread count (see
  /// SimParams::sim_threads). Clamped to [1, 256]; bands never exceed the
  /// fabric height. Any value produces bit-identical results.
  void set_threads(int threads);
  [[nodiscard]] int threads() const { return threads_; }

  /// Attach a cycle-attribution profiler (nullptr detaches; see
  /// docs/PROFILING.md). The profiler must outlive its attachment and
  /// match the fabric dimensions (std::invalid_argument otherwise). With
  /// none attached the hooks are a null-pointer test per tile per phase.
  /// All recording writes tile-owned state from the band that owns the
  /// tile, so — like counters and traces — profiles are bit-identical at
  /// any thread count.
  void set_profiler(telemetry::Profiler* profiler);
  [[nodiscard]] telemetry::Profiler* profiler() const { return profiler_; }

  /// Attach a black-box flight recorder (nullptr detaches; see
  /// docs/POSTMORTEM.md). The recorder must outlive its attachment and
  /// match the fabric dimensions (std::invalid_argument otherwise). With
  /// none attached the taps are a null-pointer test; with one attached the
  /// simulation is still bit-identical — recording only observes, and all
  /// writes are tile-owned under the banded determinism contract, so rings
  /// are bit-identical at any thread count too.
  void set_flight_recorder(telemetry::FlightRecorder* rec);
  [[nodiscard]] telemetry::FlightRecorder* flight_recorder() const {
    return flightrec_;
  }

  /// Attach a time-series sampler (nullptr detaches; see
  /// docs/TIMESERIES.md). The sampler must outlive its attachment.
  /// Attaching captures the delta baseline at the current cycle, so frames
  /// cover activity since attachment. Every sample is collected in the
  /// serial tail of step(), after all row bands merged — frames are
  /// bit-identical at any thread count, and collection only reads
  /// simulated state (non-perturbation proven by
  /// tests/telemetry/timeseries_test.cpp).
  void set_sampler(telemetry::TimeSeriesSampler* sampler);
  [[nodiscard]] telemetry::TimeSeriesSampler* sampler() const {
    return sampler_;
  }
  /// Force one frame at the current cycle, closing the final partial
  /// window — without this, runs shorter than the interval (or whose
  /// length is not a multiple of it) would lose their tail and the
  /// summed-deltas == profiler-totals invariant would not hold. No-op
  /// when no sampler is attached or no cycles elapsed since the last
  /// frame.
  void sample_now();

  /// Attach a network monitor (nullptr detaches; see docs/NETWORK.md).
  /// The monitor must outlive its attachment; set its flow table first.
  /// Attaching sizes the counter planes and captures the observation
  /// baseline at the current cycle, and snapshots the declared flow names
  /// into any attached sampler (set_sampler does the same in the other
  /// attach order). Recording happens in the link phase, every counter
  /// cell owned by the source tile's band, and the per-flow rollup joins
  /// samples in the serial tail — so netflow streams are bit-identical at
  /// any thread count, and recording only observes (non-perturbation
  /// proven by tests/telemetry/netmon_test.cpp).
  void set_net_monitor(telemetry::NetMonitor* monitor);
  [[nodiscard]] telemetry::NetMonitor* net_monitor() const { return netmon_; }

  /// No-progress watchdog: when nonzero, run() samples a monotone
  /// progress signature (instructions retired, words moved, tasks started)
  /// every `cycles` cycles and stops with StopInfo::Reason::Watchdog once
  /// a full window passes with no change — a routing deadlock or a wedged
  /// task tree can then be examined instead of burning the whole cycle
  /// budget. 0 disables (the default; SimParams::watchdog_cycles or
  /// WSS_WATCHDOG_CYCLES seed the initial value). Observation only: the
  /// watchdog never changes simulated state, just when run() returns.
  void set_watchdog(std::uint64_t cycles) { watchdog_cycles_ = cycles; }
  [[nodiscard]] std::uint64_t watchdog() const { return watchdog_cycles_; }

  /// Select the execution backend (docs/BACKENDS.md). Backend::Auto is
  /// resolved against WSS_SIM_BACKEND at call time (the constructor applies
  /// SimParams::backend the same way). A backend is a host execution
  /// strategy only: switching never changes simulated results — the
  /// conformance suite holds turbo bit-identical to reference for results,
  /// cycles, heatmaps and counters at any thread count. Composes with
  /// set_threads: turbo steps through the same row-banded thread pool.
  void set_backend(Backend backend);
  [[nodiscard]] Backend backend() const { return backend_; }
  /// True when the next step() takes the turbo fast path: turbo is
  /// selected and no demotion trigger — tracer, profiler, flight recorder,
  /// sampler, watchdog, fault plan — is currently attached. While a
  /// trigger is attached the fabric silently steps the reference phases
  /// (observers see exactly what they would see on reference, because it
  /// IS reference); it re-promotes on the first step after detachment.
  [[nodiscard]] bool turbo_active() const {
    return backend_ == Backend::Turbo && !turbo_demoted();
  }
  /// Turbo bookkeeping counters (zeros until the first turbo step).
  [[nodiscard]] TurboStats turbo_stats() const {
    return turbo_ != nullptr ? turbo_->stats : TurboStats{};
  }

  /// Tiles with unfinished work right now (row-major, capped at `cap`):
  /// active-but-stalled tiles first; if none, not-done quiescent tiles
  /// (wedged waiting for an activation that will never come).
  [[nodiscard]] std::vector<std::pair<int, int>> blocked_tiles(
      std::size_t cap = kMaxBlockedTiles) const;

  static constexpr std::size_t kMaxBlockedTiles = 256;

  // --- seeded fault injection (docs/ROBUSTNESS.md) ---

  /// Attach a deterministic fault plan (nullptr detaches). The plan must
  /// outlive its attachment and its coordinates must be in bounds
  /// (std::invalid_argument otherwise). With no plan attached the fault
  /// hooks are a single null-pointer test per phase band — zero cost
  /// (bench_fault_overhead proves it); an attached *empty* plan changes
  /// nothing about the simulated behaviour. Accumulated fault stats and
  /// the event log survive detachment.
  void set_fault_plan(const FaultPlan* plan);
  [[nodiscard]] bool has_fault_plan() const { return faults_ != nullptr; }
  [[nodiscard]] const FaultStats& fault_stats() const { return fault_stats_; }
  /// Bounded band-order-deterministic log of injected faults.
  [[nodiscard]] const std::vector<FaultEvent>& fault_log() const {
    return fault_log_;
  }
  [[nodiscard]] std::size_t fault_log_dropped() const {
    return fault_log_dropped_;
  }
  /// Injected-fault count at tile (x, y) — the telemetry heatmap source.
  [[nodiscard]] std::uint64_t fault_injections(int x, int y) const;

private:
  struct Tile {
    std::unique_ptr<TileCore> core;
    RouterState router;
  };

  [[nodiscard]] std::size_t tile_index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }
  [[nodiscard]] bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  // Per-phase row-band workers. Each operates on rows [y0, y1) and, for
  // the link phase, returns the number of link transfers it performed so
  // the global counter can be reduced deterministically at the barrier.
  // `band` indexes the per-band fault staging buffers.
  void route_phase(int y0, int y1, int band);
  void core_phase(int y0, int y1, Tracer* tracer, int band);
  [[nodiscard]] std::uint64_t link_phase(int y0, int y1, int band);

  // --- turbo backend (turbo_backend.cpp; docs/BACKENDS.md) ---

  /// An attached observer or fault plan forces reference stepping.
  [[nodiscard]] bool turbo_demoted() const {
    return faults_ != nullptr || user_tracer_ != nullptr ||
           profiler_ != nullptr || flightrec_ != nullptr ||
           sampler_ != nullptr || netmon_ != nullptr ||
           watchdog_cycles_ != 0;
  }
  /// (Re)build the SoA mirror from fabric state and mark it live.
  void turbo_promote();
  /// One turbo cycle: same three phases, same banding, over the mirror.
  void turbo_step();
  void turbo_route_phase(int y0, int y1, int band);
  void turbo_core_phase(int y0, int y1, int band);
  [[nodiscard]] std::uint64_t turbo_link_phase(int y0, int y1, int band);
  [[nodiscard]] bool turbo_quiescent() const;
  [[nodiscard]] bool turbo_all_done() const;
  /// Structural mutation (reset_control, configure_tile, set_backend):
  /// drop the mirror; the next turbo step resyncs via turbo_promote.
  void turbo_invalidate() {
    if (turbo_ != nullptr) turbo_->live = false;
  }

  /// Bands actually used this step: min(threads_, height_), at least 1.
  [[nodiscard]] int band_count() const;
  /// Row range [first, last) of `band` out of `bands` (contiguous,
  /// balanced to within one row).
  [[nodiscard]] std::pair<int, int> band_rows(int band, int bands) const;
  void ensure_pool(int bands);
  void merge_staged_trace_events();
  /// Fill a cumulative fabric-wide sample (row-major aggregation over
  /// tiles). Called only from serial code (step() tail, sample_now).
  void collect_sample(telemetry::TimeSeriesSample* out) const;

  int width_;
  int height_;
  const CS1Params* arch_;
  SimParams sim_;
  std::vector<Tile> tiles_;
  FabricStats stats_;

  // Host-side parallel stepping (no effect on simulated behaviour).
  int threads_ = 1;
  std::unique_ptr<SimThreadPool> pool_;
  Tracer* user_tracer_ = nullptr;
  telemetry::Profiler* profiler_ = nullptr;
  telemetry::FlightRecorder* flightrec_ = nullptr;
  telemetry::TimeSeriesSampler* sampler_ = nullptr;
  telemetry::NetMonitor* netmon_ = nullptr;
  std::uint64_t watchdog_cycles_ = 0;
  std::vector<std::unique_ptr<Tracer>> trace_staging_; ///< one per band
  std::vector<std::uint64_t> band_link_transfers_;

  /// Monotone counter over everything that constitutes forward progress
  /// (instructions, deliveries, task starts, link movement). Read-only —
  /// the watchdog compares snapshots without touching simulated state.
  [[nodiscard]] std::uint64_t progress_signature() const;

  // --- fault injection (allocated only while a plan is attached) ---

  /// Per-tile compiled view of the plan plus per-link ordinal counters.
  /// All of it is owned by the tile's row band: the route/core hooks read
  /// the tile's own entry, and the link hooks advance the *source* tile's
  /// ordinals — exactly the ownership the banded determinism contract
  /// already guarantees for router queues.
  struct TileFaults {
    std::vector<LinkFault> links[4];  ///< faults on each outgoing dir
    std::vector<std::pair<std::uint64_t, std::uint64_t>> stall_windows;
    std::uint64_t dead_from = kFaultForever;
    std::uint64_t link_ordinal[4] = {0, 0, 0, 0};
  };
  struct FaultState {
    const FaultPlan* plan = nullptr;
    std::vector<TileFaults> tiles;
    // Staged per band during a step, merged in band order afterwards.
    std::vector<FaultStats> band_stats;
    std::vector<std::vector<FaultEvent>> band_events;
  };

  /// True if the tile at (x, y) is inside a router-stall window.
  [[nodiscard]] bool router_stalled(const TileFaults& tf,
                                    std::uint64_t cycle) const;
  /// Append `ev` to `band`'s staging buffer (serial: band 0).
  void stage_fault_event(int band, const FaultEvent& ev);
  /// Reduce per-band fault stats/events into the fabric-global log, in
  /// band order, emitting tracer events when a tracer is attached.
  void merge_fault_bands(int bands);

  static constexpr std::size_t kFaultLogCapacity = 4096;

  std::unique_ptr<FaultState> faults_;
  FaultStats fault_stats_;
  std::vector<FaultEvent> fault_log_;
  std::size_t fault_log_dropped_ = 0;
  /// Per-tile injected-fault counts (lazily sized width*height on first
  /// plan attach; like fault_stats_, survives plan detachment).
  std::vector<std::uint64_t> fault_injections_;

  // --- turbo backend (allocated on first turbo step) ---
  Backend backend_ = Backend::Reference;
  std::unique_ptr<TurboState> turbo_;
};

} // namespace wss::wse
