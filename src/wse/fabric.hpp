#pragma once

// The fabric: a 2D array of tiles (core + router), stepped cycle by cycle.
// Each cycle has three deterministic phases:
//   1. route  — words in input latches are forwarded per the routing rules
//               (multicast fanout happens here, with backpressure),
//   2. core   — every core runs one datapath/scheduler cycle and may inject,
//   3. link   — each output link moves one word into the neighbor's latch.
// This yields one-word-per-link-per-cycle bandwidth and ~1 cycle/hop
// latency, the paper's stated fabric characteristics.
//
// Host-side parallelism: within each phase, every tile reads only its own
// state plus queues it uniquely owns (the link phase writes a neighbor's
// per-direction input queue, which no other tile — including the neighbor
// itself — touches during that phase), so the phases are data-parallel over
// tiles. step() shards the grid into contiguous row bands across a
// persistent thread pool with a barrier between phases; fabric-global
// counters are accumulated per band and reduced in band order, and tracer
// events are staged per band and merged in band order, so a parallel run is
// bit-identical to a serial one for any thread count (the determinism
// contract in docs/SIMULATOR.md, enforced by
// tests/wse/parallel_conformance_test.cpp).

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "wse/core.hpp"
#include "wse/sim_pool.hpp"

namespace wss::wse {

struct FabricStats {
  std::uint64_t cycles = 0;
  std::uint64_t link_transfers = 0;

  [[nodiscard]] double seconds(const CS1Params& arch) const {
    return static_cast<double>(cycles) / arch.clock_hz;
  }
};

class Fabric {
public:
  Fabric(int width, int height, const CS1Params& arch, const SimParams& sim);
  ~Fabric();
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;
  Fabric(Fabric&&) noexcept = default;
  Fabric& operator=(Fabric&&) noexcept = default;

  /// Install a tile's program and routing table. Must be called for every
  /// tile before running. Coordinates: x east, y south.
  void configure_tile(int x, int y, TileProgram program, RoutingTable routes);

  [[nodiscard]] TileCore& core(int x, int y) {
    return *tiles_[tile_index(x, y)].core;
  }
  [[nodiscard]] const TileCore& core(int x, int y) const {
    return *tiles_[tile_index(x, y)].core;
  }
  /// True once configure_tile was called for (x, y).
  [[nodiscard]] bool has_core(int x, int y) const {
    return tiles_[tile_index(x, y)].core != nullptr;
  }
  /// Per-router activity counters (telemetry heatmaps).
  [[nodiscard]] const RouterStats& router_stats(int x, int y) const {
    return tiles_[tile_index(x, y)].router.stats;
  }

  /// Advance one cycle.
  void step();

  /// Run until every tile raised its done flag, the whole fabric went
  /// quiescent, or `max_cycles` elapsed. Returns cycles executed.
  std::uint64_t run(std::uint64_t max_cycles);

  [[nodiscard]] bool all_done() const;
  [[nodiscard]] bool quiescent() const;
  [[nodiscard]] const FabricStats& stats() const { return stats_; }
  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  /// Reset per-run control state (descriptors, tasks, stats) on every tile
  /// so the loaded data can be reused for another kernel invocation.
  void reset_control();

  /// Attach an execution tracer to every configured tile (nullptr
  /// detaches). Use Tracer::focus to limit recording to one tile. When the
  /// fabric steps in parallel, core events are staged into per-band
  /// buffers and merged into `tracer` in serial (row-major) order at the
  /// end of each core phase, so the recorded stream — including capacity
  /// drops — is bit-identical to a serial run.
  void set_tracer(Tracer* tracer);

  /// Override the host-side simulation thread count (see
  /// SimParams::sim_threads). Clamped to [1, 256]; bands never exceed the
  /// fabric height. Any value produces bit-identical results.
  void set_threads(int threads);
  [[nodiscard]] int threads() const { return threads_; }

private:
  struct Tile {
    std::unique_ptr<TileCore> core;
    RouterState router;
  };

  [[nodiscard]] std::size_t tile_index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }
  [[nodiscard]] bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  // Per-phase row-band workers. Each operates on rows [y0, y1) and, for
  // the link phase, returns the number of link transfers it performed so
  // the global counter can be reduced deterministically at the barrier.
  void route_phase(int y0, int y1);
  void core_phase(int y0, int y1, Tracer* tracer);
  [[nodiscard]] std::uint64_t link_phase(int y0, int y1);

  /// Bands actually used this step: min(threads_, height_), at least 1.
  [[nodiscard]] int band_count() const;
  /// Row range [first, last) of `band` out of `bands` (contiguous,
  /// balanced to within one row).
  [[nodiscard]] std::pair<int, int> band_rows(int band, int bands) const;
  void ensure_pool(int bands);
  void merge_staged_trace_events();

  int width_;
  int height_;
  const CS1Params* arch_;
  SimParams sim_;
  std::vector<Tile> tiles_;
  FabricStats stats_;

  // Host-side parallel stepping (no effect on simulated behaviour).
  int threads_ = 1;
  std::unique_ptr<SimThreadPool> pool_;
  Tracer* user_tracer_ = nullptr;
  std::vector<std::unique_ptr<Tracer>> trace_staging_; ///< one per band
  std::vector<std::uint64_t> band_link_transfers_;
};

} // namespace wss::wse
