#include "wse/fabric.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

// Header-only recording surfaces; create no link dependency on
// wss_telemetry (analysis lives there, the fabric only records).
#include "common/env.hpp"
#include "telemetry/flightrec.hpp"
#include "telemetry/netmon.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/timeseries.hpp"

namespace wss::wse {

namespace {

/// Map a core step outcome (plus fault context) to a profiler category.
telemetry::CycleCat categorize(StepOutcome outcome, bool router_faulted) {
  switch (outcome) {
    case StepOutcome::Compute:
      return telemetry::CycleCat::Compute;
    case StepOutcome::Idle:
      return telemetry::CycleCat::Idle;
    case StepOutcome::StallSend:
    case StepOutcome::StallRecv:
    case StepOutcome::StallOther:
      // A stalled core under an injected router-stall window is the
      // fault's doing, whatever port the core blames.
      if (router_faulted) return telemetry::CycleCat::RouterStall;
      if (outcome == StepOutcome::StallSend) {
        return telemetry::CycleCat::SendBlocked;
      }
      // StallOther (e.g. the only busy slot retired with zero work while
      // waiting for upstream data) counts as recv-starved: the tile had
      // work it could not feed.
      return telemetry::CycleCat::RecvStarved;
  }
  return telemetry::CycleCat::Idle;
}

/// SimParams::watchdog_cycles, or WSS_WATCHDOG_CYCLES when 0 (strict
/// parse), or 0 = disabled — mirroring resolve_sim_threads.
std::uint64_t resolve_watchdog_cycles(std::uint64_t requested) {
  if (requested != 0) return requested;
  return env::parse_u64("WSS_WATCHDOG_CYCLES", 0);
}

/// SimParams::backend, with Auto resolved against WSS_SIM_BACKEND —
/// mirroring resolve_sim_threads / resolve_watchdog_cycles. Strict: an
/// unknown value is a configuration error, not a silent reference run.
Backend resolve_backend(Backend requested) {
  if (requested != Backend::Auto) return requested;
  const std::string v = env::parse_string("WSS_SIM_BACKEND");
  if (v.empty() || v == "reference") return Backend::Reference;
  if (v == "turbo") return Backend::Turbo;
  throw std::invalid_argument(
      "WSS_SIM_BACKEND must be 'reference' or 'turbo', got '" + v + "'");
}

} // namespace

Fabric::Fabric(int width, int height, const CS1Params& arch,
               const SimParams& sim)
    : width_(width), height_(height), arch_(&arch), sim_(sim),
      threads_(resolve_sim_threads(sim.sim_threads)),
      watchdog_cycles_(resolve_watchdog_cycles(sim.watchdog_cycles)),
      backend_(resolve_backend(sim.backend)) {
  tiles_.resize(static_cast<std::size_t>(width) *
                static_cast<std::size_t>(height));
}

Fabric::~Fabric() = default;

void Fabric::configure_tile(int x, int y, TileProgram program,
                            RoutingTable routes) {
  Tile& t = tiles_[tile_index(x, y)];
  t.core = std::make_unique<TileCore>(std::move(program), *arch_, sim_);
  t.core->set_position(x, y); // flit provenance for the critical path
  t.router.table = std::move(routes);
  if (user_tracer_ != nullptr) t.core->set_tracer(user_tracer_, x, y);
  if (profiler_ != nullptr) profiler_->mark_configured(x, y);
  if (flightrec_ != nullptr) {
    t.core->set_flight_recorder(flightrec_);
    flightrec_->mark_configured(x, y);
  }
  turbo_invalidate();
}

void Fabric::set_backend(Backend backend) {
  backend_ = resolve_backend(backend);
  // An explicit switch resyncs silently on the next turbo step; only
  // observer-forced fallbacks count as demotions in TurboStats.
  turbo_invalidate();
}

void Fabric::set_flight_recorder(telemetry::FlightRecorder* rec) {
  if (rec != nullptr &&
      (rec->width() != width_ || rec->height() != height_)) {
    throw std::invalid_argument(
        "flight recorder dimensions must match the fabric");
  }
  flightrec_ = rec;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      Tile& t = tiles_[tile_index(x, y)];
      if (t.core == nullptr) continue;
      t.core->set_flight_recorder(rec);
      if (rec != nullptr) rec->mark_configured(x, y);
    }
  }
}

void Fabric::set_profiler(telemetry::Profiler* profiler) {
  if (profiler != nullptr &&
      (profiler->width() != width_ || profiler->height() != height_)) {
    throw std::invalid_argument("profiler dimensions must match the fabric");
  }
  profiler_ = profiler;
  if (profiler_ == nullptr) return;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      if (tiles_[tile_index(x, y)].core != nullptr) {
        profiler_->mark_configured(x, y);
      }
    }
  }
}

void Fabric::set_sampler(telemetry::TimeSeriesSampler* sampler) {
  sampler_ = sampler;
  if (sampler_ == nullptr) return;
  // Baseline at the current cycle: frames record activity since this
  // attachment, so a profiler attached alongside sums exactly (the frame
  // deltas add up to its end-of-run totals).
  telemetry::TimeSeriesSample baseline;
  collect_sample(&baseline);
  sampler_->on_attach(width_, height_, baseline);
  if (netmon_ != nullptr) {
    sampler_->set_net_flows(netmon_->flow_table().flows());
  }
}

void Fabric::set_net_monitor(telemetry::NetMonitor* monitor) {
  netmon_ = monitor;
  if (netmon_ == nullptr) return;
  netmon_->on_attach(width_, height_, stats_.cycles, stats_.link_transfers);
  // Either attach order leaves the sampler knowing the flow names the
  // frames' net vectors are aligned with.
  if (sampler_ != nullptr) {
    sampler_->set_net_flows(netmon_->flow_table().flows());
  }
}

void Fabric::sample_now() {
  if (sampler_ == nullptr) return;
  if (stats_.cycles == sampler_->last_cycle()) return; // nothing new
  telemetry::TimeSeriesSample s;
  collect_sample(&s);
  sampler_->record(s);
}

void Fabric::collect_sample(telemetry::TimeSeriesSample* out) const {
  telemetry::TimeSeriesSample s;
  s.cycle = stats_.cycles;
  s.threads = threads_;
  s.link_transfers = stats_.link_transfers;
  s.fault_total = fault_stats_.total();
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Tile& t = tiles_[tile_index(x, y)];
      s.flits_forwarded += t.router.stats.flits_forwarded;
      std::uint64_t queued = 0;
      for (int d = 0; d < 4; ++d) {
        for (const auto& q :
             t.router.in_queues[static_cast<std::size_t>(d)]) {
          queued += q.size();
        }
        for (const auto& q :
             t.router.out_queues[static_cast<std::size_t>(d)]) {
          queued += q.size();
        }
      }
      s.router_queued_flits += queued;
      s.router_queue_peak = std::max(s.router_queue_peak, queued);
      if (t.core == nullptr) continue;
      const CoreStats& cs = t.core->stats();
      s.words_sent += cs.words_sent;
      s.words_received += cs.words_received;
      s.instr_cycles += cs.instr_cycles;
      s.stall_cycles += cs.stall_cycles;
      s.idle_cycles += cs.idle_cycles;
      s.task_invocations += cs.task_invocations;
      s.fifo_highwater = std::max(s.fifo_highwater, cs.fifo_highwater);
      s.ramp_highwater = std::max(s.ramp_highwater, cs.ramp_highwater);
      s.max_iteration =
          std::max(s.max_iteration,
                   static_cast<std::uint64_t>(t.core->iteration()));
      if (t.core->done()) ++s.done_tiles;
      const auto phase = static_cast<std::size_t>(t.core->phase());
      if (phase < s.phase_tiles.size()) ++s.phase_tiles[phase];
    }
  }
  if (profiler_ != nullptr) {
    s.has_profiler = true;
    const telemetry::PhaseCatMatrix totals = profiler_->totals();
    for (std::size_t p = 0; p < totals.size(); ++p) {
      for (std::size_t c = 0; c < totals[p].size(); ++c) {
        s.prof_phase[p] += totals[p][c];
        s.prof_cat[c] += totals[p][c];
      }
    }
  }
  if (netmon_ != nullptr) netmon_->collect(&s);
  *out = s;
}

void Fabric::set_threads(int threads) {
  threads_ = std::clamp(threads, 1, 256);
}

int Fabric::band_count() const {
  return std::max(1, std::min(threads_, height_));
}

std::pair<int, int> Fabric::band_rows(int band, int bands) const {
  // Contiguous bands, balanced to within one row. Using the same formula
  // for every thread count keeps the tile->band mapping deterministic.
  const int first = band * height_ / bands;
  const int last = (band + 1) * height_ / bands;
  return {first, last};
}

void Fabric::ensure_pool(int bands) {
  if (!pool_ || pool_->threads() != bands) {
    pool_ = std::make_unique<SimThreadPool>(bands);
  }
}

// --- fault injection ----------------------------------------------------

void Fabric::set_fault_plan(const FaultPlan* plan) {
  if (plan == nullptr) {
    faults_.reset();  // stats, log and per-tile injections survive
    return;
  }
  auto check = [&](int x, int y, const char* what) {
    if (!in_bounds(x, y)) {
      throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                  " out of bounds");
    }
  };
  for (const LinkFault& f : plan->link_faults) {
    check(f.x, f.y, "link fault");
    if (f.dir == Dir::Ramp) {
      throw std::invalid_argument(
          "FaultPlan: link fault dir must be a mesh direction");
    }
    if (f.kind != FaultKind::DropWavelet &&
        f.kind != FaultKind::CorruptWavelet) {
      throw std::invalid_argument(
          "FaultPlan: link fault kind must be drop or corrupt");
    }
  }
  for (const RouterStallFault& f : plan->router_stalls) {
    check(f.x, f.y, "router stall");
  }
  for (const DeadTileFault& f : plan->dead_tiles) check(f.x, f.y, "dead tile");

  auto st = std::make_unique<FaultState>();
  st->plan = plan;
  st->tiles.resize(tiles_.size());
  for (const LinkFault& f : plan->link_faults) {
    st->tiles[tile_index(f.x, f.y)]
        .links[static_cast<std::size_t>(f.dir) % 4]
        .push_back(f);
  }
  for (const RouterStallFault& f : plan->router_stalls) {
    st->tiles[tile_index(f.x, f.y)].stall_windows.emplace_back(f.from_cycle,
                                                               f.until_cycle);
  }
  for (const DeadTileFault& f : plan->dead_tiles) {
    auto& dead = st->tiles[tile_index(f.x, f.y)].dead_from;
    dead = std::min(dead, f.from_cycle);
  }
  if (fault_injections_.size() != tiles_.size()) {
    fault_injections_.assign(tiles_.size(), 0);
  }
  faults_ = std::move(st);
}

std::uint64_t Fabric::fault_injections(int x, int y) const {
  if (!in_bounds(x, y)) throw std::invalid_argument("tile out of bounds");
  if (fault_injections_.empty()) return 0;
  return fault_injections_[tile_index(x, y)];
}

bool Fabric::router_stalled(const TileFaults& tf, std::uint64_t cycle) const {
  for (const auto& [from, until] : tf.stall_windows) {
    if (cycle >= from && cycle < until) return true;
  }
  return false;
}

void Fabric::stage_fault_event(int band, const FaultEvent& ev) {
  faults_->band_events[static_cast<std::size_t>(band)].push_back(ev);
  ++fault_injections_[tile_index(ev.x, ev.y)];
}

void Fabric::merge_fault_bands(int bands) {
  // Band-order reduction, mirroring the trace-event merge: the global
  // stats, the bounded log (including which events hit the capacity
  // drop) and any emitted tracer events come out identical to a serial
  // run for every thread count.
  for (int b = 0; b < bands; ++b) {
    auto& bs = faults_->band_stats[static_cast<std::size_t>(b)];
    fault_stats_ += bs;
    bs = FaultStats{};
    auto& evs = faults_->band_events[static_cast<std::size_t>(b)];
    for (const FaultEvent& ev : evs) {
      if (fault_log_.size() < kFaultLogCapacity) {
        fault_log_.push_back(ev);
      } else {
        ++fault_log_dropped_;
      }
      if (user_tracer_ != nullptr && user_tracer_->wants(ev.x, ev.y)) {
        user_tracer_->record(ev.cycle, ev.x, ev.y, TraceEventKind::Fault,
                             to_string(ev.kind));
      }
    }
    evs.clear();
  }
}

// ------------------------------------------------------------------------

void Fabric::route_phase(int y0, int y1, int band) {
  for (int y = y0; y < y1; ++y) {
    for (int x = 0; x < width_; ++x) {
      Tile& t = tiles_[tile_index(x, y)];
      if (t.core == nullptr) continue;
      if (faults_ != nullptr) {
        const TileFaults& tf = faults_->tiles[tile_index(x, y)];
        if (!tf.stall_windows.empty() &&
            router_stalled(tf, stats_.cycles)) {
          // Forward nothing this cycle; arriving wavelets stay queued
          // (backpressure), nothing is lost.
          auto& bs = faults_->band_stats[static_cast<std::size_t>(band)];
          ++bs.router_stall_cycles;
          for (const auto& [from, until] : tf.stall_windows) {
            if (stats_.cycles == from) {
              stage_fault_event(band, FaultEvent{stats_.cycles, x, y,
                                                 Dir::Ramp,
                                                 FaultKind::StallRouter, 0,
                                                 0});
            }
          }
          continue;
        }
      }
      for (int d = 0; d < 4; ++d) {
        for (int c = 0; c < kNumColors; ++c) {
          auto& q = t.router.in_queues[static_cast<std::size_t>(d)]
                                      [static_cast<std::size_t>(c)];
          while (!q.empty()) {
            const Flit flit = q.front();
            const RouteRule& rule = t.router.table.rule(flit.color);

            // All-targets-or-nothing fanout with backpressure: the flit
            // stays in its virtual-channel queue (blocking only its own
            // color) until every forward queue and every local channel
            // can accept a copy.
            bool space = true;
            for (int od = 0; od < 4 && space; ++od) {
              if (rule.forwards_to(static_cast<Dir>(od)) &&
                  static_cast<int>(
                      t.router
                          .out_queues[static_cast<std::size_t>(od)][flit.color]
                          .size()) >= sim_.router_queue_depth) {
                space = false;
              }
            }
            for (std::size_t ci = 0;
                 space && ci < rule.deliver_channels.size(); ++ci) {
              if (!t.core->can_deliver(rule.deliver_channels[ci])) {
                space = false;
              }
            }
            if (!space) break;

            if (profiler_ != nullptr && !rule.deliver_channels.empty()) {
              // Wavelet dependency edge for the critical-path analyzer:
              // one edge per delivered flit (multicast to several local
              // channels is still one arrival).
              profiler_->record_recv(x, y, stats_.cycles, flit);
            }
            if (flightrec_ != nullptr && !rule.deliver_channels.empty()) {
              // Flight-recorder tap: the same band owns the tile, so the
              // ring is bit-identical at any thread count.
              flightrec_->record_wavelet(x, y, stats_.cycles, flit);
            }
            for (int ch : rule.deliver_channels) {
              t.core->try_deliver(ch, flit.payload);
            }
            for (int od = 0; od < 4; ++od) {
              if (rule.forwards_to(static_cast<Dir>(od))) {
                auto& oq =
                    t.router.out_queues[static_cast<std::size_t>(od)]
                                       [flit.color];
                oq.push_back(flit);
                occ_set(t.router.out_occ[static_cast<std::size_t>(od)],
                        flit.color);
                ++t.router.stats.flits_forwarded;
                t.router.stats.queue_highwater =
                    std::max(t.router.stats.queue_highwater,
                             static_cast<std::uint64_t>(oq.size()));
              }
            }
            q.pop_front();
          }
          if (q.empty()) {
            occ_clear(t.router.in_occ[static_cast<std::size_t>(d)], c);
          }
        }
      }
    }
  }
}

void Fabric::core_phase(int y0, int y1, Tracer* tracer, int band) {
  for (int y = y0; y < y1; ++y) {
    for (int x = 0; x < width_; ++x) {
      Tile& t = tiles_[tile_index(x, y)];
      if (t.core == nullptr) continue;
      if (user_tracer_ != nullptr) t.core->set_tracer(tracer, x, y);
      bool router_faulted = false;
      if (faults_ != nullptr) {
        const TileFaults& tf = faults_->tiles[tile_index(x, y)];
        if (stats_.cycles >= tf.dead_from) {
          // Datapath death: the core stops executing but its router keeps
          // forwarding (handled by route/link phases as usual).
          ++faults_->band_stats[static_cast<std::size_t>(band)]
                .dead_tile_cycles;
          if (stats_.cycles == tf.dead_from) {
            stage_fault_event(band,
                              FaultEvent{stats_.cycles, x, y, Dir::Ramp,
                                         FaultKind::DeadTile, 0, 0});
          }
          if (profiler_ != nullptr) {
            // The cycle belongs to the fault, not the program: the core
            // never stepped, so the attribution happens here.
            profiler_->record_cycle(x, y, t.core->phase(),
                                    telemetry::CycleCat::FaultStall,
                                    stats_.cycles);
          }
          continue;
        }
        router_faulted =
            !tf.stall_windows.empty() && router_stalled(tf, stats_.cycles);
      }
      const StepOutcome outcome = t.core->step(t.router, stats_.cycles);
      if (profiler_ != nullptr) {
        profiler_->record_cycle(x, y, t.core->phase(),
                                categorize(outcome, router_faulted),
                                stats_.cycles);
        profiler_->record_iteration(x, y, t.core->iteration(),
                                    stats_.cycles);
      }
    }
  }
}

std::uint64_t Fabric::link_phase(int y0, int y1, int band) {
  // Cross-tile mutation lives here and only here: tile (x, y) moves flits
  // from its own out_queues[d] into neighbor (x+dx, y+dy)'s
  // in_queues[opposite(d)]. That queue has exactly one writer (this tile)
  // and no reader during the link phase, so bands — which shard over the
  // *source* tile — never race, including across band boundaries.
  std::uint64_t transfers = 0;
  for (int y = y0; y < y1; ++y) {
    for (int x = 0; x < width_; ++x) {
      Tile& t = tiles_[tile_index(x, y)];
      for (int d = 0; d < 4; ++d) {
        const Dir dir = static_cast<Dir>(d);
        const auto [dx, dy] = wse::step(dir);
        const int nx = x + dx;
        const int ny = y + dy;
        if (!in_bounds(nx, ny)) continue;
        Tile& nb = tiles_[tile_index(nx, ny)];
        auto& in_queues =
            nb.router.in_queues[static_cast<std::size_t>(opposite(dir))];
        // 32-bit link: move up to one link-cycle of halfwords, choosing
        // colors round-robin; each color lands in its own virtual-channel
        // input queue at the neighbor.
        int budget = sim_.link_halfwords_per_cycle;
        auto& queues = t.router.out_queues[static_cast<std::size_t>(d)];
        int& rr = t.router.rr[static_cast<std::size_t>(d)];
        while (budget > 0) {
          bool moved = false;
          for (int k = 0; k < kNumColors; ++k) {
            const int c = (rr + k) % kNumColors;
            auto& q = queues[static_cast<std::size_t>(c)];
            if (q.empty()) continue;
            const int cost = q.front().wide ? 2 : 1;
            if (cost > budget) continue;
            auto& inq = in_queues[static_cast<std::size_t>(c)];
            if (flit_halfwords(inq) + cost > 2 * sim_.link_halfwords_per_cycle) {
              continue;
            }
            Flit flit = q.front();
            q.pop_front();
            if (q.empty()) {
              occ_clear(t.router.out_occ[static_cast<std::size_t>(d)], c);
            }
            budget -= cost;
            rr = (c + 1) % kNumColors;
            moved = true;
            // Link faults fire at the instant the wavelet traverses the
            // link. The decision is a pure hash of (plan seed, source
            // tile, dir, per-link ordinal) — all owned by the source
            // tile's band — so it is thread-count independent. A drop
            // still consumes link budget (the word was transmitted, then
            // lost) but is not counted as a transfer; corruption XORs the
            // payload in flight and delivers it.
            bool dropped = false;
            if (faults_ != nullptr) {
              TileFaults& tf = faults_->tiles[tile_index(x, y)];
              auto& lf = tf.links[static_cast<std::size_t>(d)];
              if (!lf.empty()) {
                const std::uint64_t ordinal =
                    tf.link_ordinal[static_cast<std::size_t>(d)]++;
                auto& bs =
                    faults_->band_stats[static_cast<std::size_t>(band)];
                for (std::size_t fi = 0; fi < lf.size(); ++fi) {
                  const LinkFault& f = lf[fi];
                  if (stats_.cycles < f.from_cycle ||
                      stats_.cycles >= f.until_cycle) {
                    continue;
                  }
                  if (fault_roll(faults_->plan->seed + fi, x, y, dir,
                                 ordinal) >= f.probability) {
                    continue;
                  }
                  if (f.kind == FaultKind::DropWavelet) {
                    ++bs.wavelets_dropped;
                    stage_fault_event(
                        band, FaultEvent{stats_.cycles, x, y, dir,
                                         FaultKind::DropWavelet,
                                         flit.payload, 0});
                    dropped = true;
                    break;
                  }
                  if (f.kind == FaultKind::CorruptWavelet) {
                    const std::uint32_t before = flit.payload;
                    flit.payload ^= f.corrupt_mask;
                    ++bs.wavelets_corrupted;
                    stage_fault_event(
                        band, FaultEvent{stats_.cycles, x, y, dir,
                                         FaultKind::CorruptWavelet, before,
                                         flit.payload});
                  }
                }
              }
            }
            if (!dropped) {
              inq.push_back(flit);
              occ_set(nb.router.in_occ[static_cast<std::size_t>(opposite(dir))],
                      c);
              ++t.router.stats.link_words[static_cast<std::size_t>(d)];
              ++transfers;
              if (netmon_ != nullptr) {
                netmon_->record_move(tile_index(x, y), d, c);
              }
            }
            break;
          }
          if (!moved) break;
        }
        if (netmon_ != nullptr) {
          // End-of-phase audit of this link: a color still holding flits
          // either lost the budget race to its siblings (normal
          // multiplexing) or sits blocked behind a full destination
          // virtual-channel queue — only the latter is congestion. All
          // counters are owned by the source tile's band.
          const std::size_t tile = tile_index(x, y);
          const std::uint32_t occ =
              t.router.out_occ[static_cast<std::size_t>(d)];
          std::uint64_t backlog = 0;
          bool any_blocked = false;
          for (int c = 0; occ != 0 && c < kNumColors; ++c) {
            if ((occ & (1u << static_cast<unsigned>(c))) == 0) continue;
            auto& q = queues[static_cast<std::size_t>(c)];
            const auto hw = static_cast<std::uint64_t>(flit_halfwords(q));
            backlog += hw;
            netmon_->record_backlog(tile, d, c, hw);
            const int cost = q.front().wide ? 2 : 1;
            if (flit_halfwords(in_queues[static_cast<std::size_t>(c)]) + cost >
                2 * sim_.link_halfwords_per_cycle) {
              netmon_->record_blocked(tile, d, c);
              any_blocked = true;
            }
          }
          netmon_->record_link_cycle(tile, d, backlog, any_blocked);
        }
      }
    }
  }
  return transfers;
}

void Fabric::merge_staged_trace_events() {
  // Band-order merge reproduces the serial (row-major) event order; the
  // user tracer's own capacity accounting then drops exactly the same
  // events a serial run would drop. Focus filtering happens here because
  // the staging tracers record unconditionally.
  for (auto& staged : trace_staging_) {
    if (!staged) continue;
    for (const TraceEvent& ev : staged->events()) {
      if (user_tracer_->wants(ev.tile_x, ev.tile_y)) {
        user_tracer_->record(ev.cycle, ev.tile_x, ev.tile_y, ev.kind,
                             ev.label);
      }
    }
    staged->clear();
  }
}

void Fabric::step() {
  if (backend_ == Backend::Turbo) {
    if (!turbo_demoted()) {
      if (turbo_ == nullptr || !turbo_->live) turbo_promote();
      turbo_step();
      return;
    }
    if (turbo_ != nullptr && turbo_->live) {
      // A demotion trigger appeared mid-run: fall back to the reference
      // phases until it detaches (turbo_active() re-promotes then). The
      // mirror is stale from here on, so it is dropped, not paused.
      turbo_->live = false;
      ++turbo_->stats.demotions;
    }
  }
  const int bands = band_count();
  if (faults_ != nullptr) {
    // (Re)size the per-band fault staging. Merging happens after *each*
    // phase so the global event order is phase-major then row-major —
    // exactly the serial order — at any thread count.
    faults_->band_stats.assign(static_cast<std::size_t>(bands),
                               FaultStats{});
    faults_->band_events.resize(static_cast<std::size_t>(bands));
  }
  if (bands <= 1) {
    route_phase(0, height_, 0);
    if (faults_ != nullptr) merge_fault_bands(1);
    // core_phase rebinds tracers to `user_tracer_` so a serial step after
    // a parallel one (set_threads) never leaves cores pointing at stale
    // per-band staging buffers.
    core_phase(0, height_, user_tracer_, 0);
    if (faults_ != nullptr) merge_fault_bands(1);
    stats_.link_transfers += link_phase(0, height_, 0);
    if (faults_ != nullptr) merge_fault_bands(1);
    if (profiler_ != nullptr) profiler_->add_observed_cycle();
    ++stats_.cycles;
    // Sampling happens in this serial tail on both stepping paths: every
    // band has merged, the fabric is quiescent, so a frame reads the same
    // state a serial run would see — bit-identical at any thread count.
    if (sampler_ != nullptr && sampler_->due(stats_.cycles)) {
      telemetry::TimeSeriesSample s;
      collect_sample(&s);
      sampler_->record(s);
    }
    return;
  }

  ensure_pool(bands);
  if (user_tracer_ != nullptr) {
    trace_staging_.resize(static_cast<std::size_t>(bands));
    for (auto& staged : trace_staging_) {
      if (!staged) {
        staged = std::make_unique<Tracer>(
            std::numeric_limits<std::size_t>::max());
      }
    }
  }

  pool_->run([&](int band) {
    const auto [y0, y1] = band_rows(band, bands);
    route_phase(y0, y1, band);
  });
  if (faults_ != nullptr) merge_fault_bands(bands);
  pool_->run([&](int band) {
    const auto [y0, y1] = band_rows(band, bands);
    Tracer* staged = user_tracer_ != nullptr
                         ? trace_staging_[static_cast<std::size_t>(band)].get()
                         : nullptr;
    core_phase(y0, y1, staged, band);
  });
  if (user_tracer_ != nullptr) merge_staged_trace_events();
  if (faults_ != nullptr) merge_fault_bands(bands);
  band_link_transfers_.assign(static_cast<std::size_t>(bands), 0);
  pool_->run([&](int band) {
    const auto [y0, y1] = band_rows(band, bands);
    band_link_transfers_[static_cast<std::size_t>(band)] =
        link_phase(y0, y1, band);
  });
  for (const std::uint64_t n : band_link_transfers_) {
    stats_.link_transfers += n;
  }
  if (faults_ != nullptr) merge_fault_bands(bands);
  if (profiler_ != nullptr) profiler_->add_observed_cycle();
  ++stats_.cycles;
  // Same serial-tail sampling as the bands<=1 path (see comment there).
  if (sampler_ != nullptr && sampler_->due(stats_.cycles)) {
    telemetry::TimeSeriesSample s;
    collect_sample(&s);
    sampler_->record(s);
  }
}

void Fabric::set_tracer(Tracer* tracer) {
  user_tracer_ = tracer;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      Tile& t = tiles_[tile_index(x, y)];
      if (t.core) t.core->set_tracer(tracer, x, y);
    }
  }
  if (tracer == nullptr) trace_staging_.clear();
}

std::uint64_t Fabric::progress_signature() const {
  // Any forward progress moves at least one of these monotone counters:
  // a computing core bumps instr_cycles, a moving wavelet bumps
  // link_transfers or flits_forwarded or words_received, a waking task
  // bumps task_invocations. Stall/idle counters are deliberately absent —
  // they advance on a wedged fabric too.
  std::uint64_t sig = stats_.link_transfers;
  for (const auto& t : tiles_) {
    sig += t.router.stats.flits_forwarded;
    if (t.core == nullptr) continue;
    const CoreStats& cs = t.core->stats();
    sig += cs.instr_cycles + cs.words_received + cs.task_invocations +
           cs.elements_processed;
  }
  return sig;
}

std::vector<std::pair<int, int>> Fabric::blocked_tiles(
    std::size_t cap) const {
  std::vector<std::pair<int, int>> out;
  // First pass: tiles with in-flight work that cannot move (the usual
  // deadlock participants).
  for (int y = 0; y < height_ && out.size() < cap; ++y) {
    for (int x = 0; x < width_ && out.size() < cap; ++x) {
      const auto& t = tiles_[tile_index(x, y)];
      if (t.core == nullptr || t.core->done()) continue;
      if (!t.core->quiescent()) out.emplace_back(x, y);
    }
  }
  if (!out.empty()) return out;
  // Fallback: everything went quiescent with unfinished work — tiles
  // waiting on an activation that will never come.
  for (int y = 0; y < height_ && out.size() < cap; ++y) {
    for (int x = 0; x < width_ && out.size() < cap; ++x) {
      const auto& t = tiles_[tile_index(x, y)];
      if (t.core != nullptr && !t.core->done()) out.emplace_back(x, y);
    }
  }
  return out;
}

StopInfo Fabric::run(std::uint64_t max_cycles) {
  StopInfo info;
  const std::uint64_t start = stats_.cycles;
  const std::uint64_t wd = watchdog_cycles_;
  // Watchdog bookkeeping is read-only (counter snapshots), so enabling it
  // cannot perturb the simulation — it only decides when run() returns.
  std::uint64_t last_sig = wd != 0 ? progress_signature() : 0;
  std::uint64_t last_progress_cycle = stats_.cycles;
  bool all_done_stop = false;
  bool quiescent_stop = false;
  bool watchdog_stop = false;
  while (stats_.cycles - start < max_cycles) {
    step();
    if (all_done()) {
      all_done_stop = true;
      break;
    }
    if (quiescent()) {
      quiescent_stop = true;
      break;
    }
    if (wd != 0 && (stats_.cycles - start) % wd == 0) {
      const std::uint64_t sig = progress_signature();
      if (sig != last_sig) {
        last_sig = sig;
        last_progress_cycle = stats_.cycles;
      } else if (stats_.cycles - last_progress_cycle >= wd) {
        watchdog_stop = true;
        break;
      }
    }
  }
  info.cycles = stats_.cycles - start;
  if (all_done_stop || all_done()) {
    info.reason = StopInfo::Reason::AllDone;
    return info;
  }
  if (watchdog_stop) {
    info.reason = StopInfo::Reason::Watchdog;
    info.deadlock = true;
    info.stalled_cycles = stats_.cycles - last_progress_cycle;
  } else if (quiescent_stop) {
    // Totally silent with unfinished work: nothing can ever wake it.
    info.reason = StopInfo::Reason::Quiescent;
    info.deadlock = true;
  } else {
    info.reason = StopInfo::Reason::MaxCycles;
    return info; // budget ran out mid-flight; no verdict, no forensics
  }
  info.blocked_tiles = blocked_tiles();
  std::string report = "stopped at cycle " + std::to_string(stats_.cycles) +
                       " (" + StopInfo::to_string(info.reason) + ", " +
                       std::to_string(info.blocked_tiles.size()) +
                       " blocked tiles";
  if (info.stalled_cycles > 0) {
    report += ", no progress for " + std::to_string(info.stalled_cycles) +
              " cycles";
  }
  report += ")\n";
  constexpr std::size_t kReportTiles = 8;
  for (std::size_t i = 0;
       i < info.blocked_tiles.size() && i < kReportTiles; ++i) {
    const auto [x, y] = info.blocked_tiles[i];
    report += "  (" + std::to_string(x) + "," + std::to_string(y) + ") " +
              tiles_[tile_index(x, y)].core->debug_state() + "\n";
  }
  if (info.blocked_tiles.size() > kReportTiles) {
    report += "  ... " +
              std::to_string(info.blocked_tiles.size() - kReportTiles) +
              " more\n";
  }
  info.report = std::move(report);
  return info;
}

bool Fabric::all_done() const {
  // Both predicates run once per cycle inside run(); while the turbo
  // mirror is live they read its dense byte arrays instead of striding
  // through every multi-KB Tile — same answers, none of the cache misses.
  if (turbo_ != nullptr && turbo_->live) return turbo_all_done();
  for (const auto& t : tiles_) {
    if (!t.core || !t.core->done()) return false;
  }
  return true;
}

bool Fabric::quiescent() const {
  if (turbo_ != nullptr && turbo_->live) return turbo_quiescent();
  for (const auto& t : tiles_) {
    if (!t.core) continue;
    if (!t.core->quiescent()) return false;
    for (int d = 0; d < 4; ++d) {
      for (const auto& q : t.router.in_queues[static_cast<std::size_t>(d)]) {
        if (!q.empty()) return false;
      }
      for (const auto& q :
           t.router.out_queues[static_cast<std::size_t>(d)]) {
        if (!q.empty()) return false;
      }
    }
  }
  return true;
}

void Fabric::reset_control() {
  for (auto& t : tiles_) {
    if (t.core) t.core->reset_control();
    for (int d = 0; d < 4; ++d) {
      for (auto& q : t.router.in_queues[static_cast<std::size_t>(d)]) {
        q.clear();
      }
      for (auto& q : t.router.out_queues[static_cast<std::size_t>(d)]) {
        q.clear();
      }
    }
    t.router.in_occ = {0, 0, 0, 0};
    t.router.out_occ = {0, 0, 0, 0};
  }
  turbo_invalidate();
}

} // namespace wss::wse
