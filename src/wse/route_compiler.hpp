#pragma once

// Offline route compilation, the CS-1 way: routing is fixed before the
// program runs. Two configurations are compiled here:
//
//  * The Fig. 5 tessellation for the SpMV neighbor broadcast: each tile
//    owns one outgoing color that fans out to its four neighbors (and loops
//    back into two local channels for the z-direction and main-diagonal
//    terms); the five colors in any tile's closed neighborhood are pairwise
//    distinct, so the four incoming streams arrive on four distinct
//    channels. color(x, y) = (x + 2y) mod 5 realizes this on the grid.
//
//  * The Fig. 6 AllReduce: values stream along rows into a center pair of
//    columns, partial sums stream along those columns into a center quad,
//    a 4:1 reduction lands on a single root, and the result is broadcast
//    back along the root column and out across every row.

#include <vector>

#include "wse/routing.hpp"
#include "wse/types.hpp"

namespace wss::wse {

// ---------------------------------------------------------------- SpMV ----

/// Number of colors in the tessellation palette.
inline constexpr int kTessellationColors = 5;

/// Loopback pseudo-channels: a tile's own broadcast is delivered locally on
/// these two channels, feeding the z-plus multiply thread and the
/// main-diagonal add thread without extra fabric traffic.
inline constexpr int kChanLoopZp = 5;
inline constexpr int kChanLoopC = 6;

/// The outgoing broadcast color of tile (x, y).
[[nodiscard]] constexpr Color tessellation_color(int x, int y) {
  return static_cast<Color>(((x % 5) + 2 * (y % 5)) % 5);
}

/// Routing rules at tile (x, y) of a width*height fabric for the SpMV
/// broadcast pattern (only; compose with allreduce rules as needed).
[[nodiscard]] RoutingTable compile_spmv_routes(int x, int y, int width,
                                               int height);

// ----------------------------------------------------------- AllReduce ----

/// Channels used by the reduction/broadcast tree. A tree occupies five
/// consecutive colors starting at a base; two trees on disjoint bases can
/// run concurrently (the fused-reduction extension).
inline constexpr Color kAllReduceBase = 8;
inline constexpr Color kAllReduceBase2 = 13;
inline constexpr Color kColorRowReduce = kAllReduceBase + 0;
inline constexpr Color kColorColReduce = kAllReduceBase + 1;
inline constexpr Color kColorQuad = kAllReduceBase + 2;
inline constexpr Color kColorFinal = kAllReduceBase + 3;
inline constexpr Color kColorBcast = kAllReduceBase + 4;

/// Geometry of the reduction tree on a width*height fabric.
struct AllReduceGeometry {
  int cxl = 0; ///< left center column
  int cxr = 0; ///< right center column
  int cyt = 0; ///< top center row
  int cyb = 0; ///< bottom center row (root row)

  [[nodiscard]] constexpr bool is_row_center(int x) const {
    return x == cxl || x == cxr;
  }
  [[nodiscard]] constexpr bool is_col_center(int y) const {
    return y == cyt || y == cyb;
  }
  /// Tiles whose row-segment reduction lands on column cxl (west half).
  [[nodiscard]] constexpr int west_count() const { return cxl + 1; }
  [[nodiscard]] int east_count(int width) const { return width - cxr; }
  [[nodiscard]] constexpr int north_count() const { return cyt + 1; }
  [[nodiscard]] int south_count(int height) const { return height - cyb; }
};

[[nodiscard]] AllReduceGeometry allreduce_geometry(int width, int height);

/// Add the AllReduce rules for tile (x, y) into an existing table, using
/// the five colors starting at `color_base`.
void add_allreduce_routes(RoutingTable& table, int x, int y, int width,
                          int height, Color color_base = kAllReduceBase);

/// Verify the Fig. 5 tessellation property over a fabric: at every tile the
/// outgoing color differs from all four incoming colors, and the incoming
/// colors are pairwise distinct. Returns the number of violations (0 = ok).
[[nodiscard]] int verify_tessellation(int width, int height);

// ----------------------------------------------------------- StencilFE ----

/// Halo-exchange colors for the generic stencil front-end
/// (src/stencilfe/). Axis exchange uses parity-split colors, so a
/// forwarding rule and a delivery rule for the same color never land on
/// one tile (the scheme the backend-conformance stencil9 program proved):
///   east sends:  color x%2       west sends:  color 2 + x%2
///   south sends: color 4 + y%2   north sends: color 6 + y%2
/// with delivery channel == color. Periodic wrap rides four dedicated
/// colors above the AllReduce palette: wrap traffic stays inside one row
/// (or one column) and has exactly one injector per row/column, so a
/// single color per wrap direction suffices fabric-wide.
inline constexpr Color kStencilWrapEast = 18;  ///< x=0 own -> x=w-1 east ghost
inline constexpr Color kStencilWrapWest = 19;  ///< x=w-1 own -> x=0 west ghost
inline constexpr Color kStencilWrapSouth = 20; ///< y=0 packet -> y=h-1 south row
inline constexpr Color kStencilWrapNorth = 21; ///< y=h-1 packet -> y=0 north row

[[nodiscard]] constexpr Color stencilfe_send_east(int x) {
  return static_cast<Color>(x % 2);
}
[[nodiscard]] constexpr Color stencilfe_send_west(int x) {
  return static_cast<Color>(2 + x % 2);
}
[[nodiscard]] constexpr Color stencilfe_send_south(int y) {
  return static_cast<Color>(4 + y % 2);
}
[[nodiscard]] constexpr Color stencilfe_send_north(int y) {
  return static_cast<Color>(6 + y % 2);
}

/// Routing rules at tile (x, y) of a width*height fabric for the generic
/// stencil halo exchange. With `periodic` set, the four wrap colors carry
/// the domain edges around (requires width >= 2 and height >= 2);
/// otherwise only the interior parity colors are compiled and the domain
/// boundary receives nothing (Dirichlet-zero / reflective fill locally).
[[nodiscard]] RoutingTable compile_stencilfe_routes(int x, int y, int width,
                                                    int height, bool periodic);

} // namespace wss::wse
