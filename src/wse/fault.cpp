#include "wse/fault.hpp"

namespace wss::wse {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::DropWavelet: return "drop-wavelet";
    case FaultKind::CorruptWavelet: return "corrupt-wavelet";
    case FaultKind::StallRouter: return "stall-router";
    case FaultKind::DeadTile: return "dead-tile";
  }
  return "?";
}

namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

} // namespace

double fault_roll(std::uint64_t seed, int x, int y, Dir dir,
                  std::uint64_t ordinal) {
  std::uint64_t h = splitmix(seed);
  h = splitmix(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(x))
                    << 32 |
                    static_cast<std::uint64_t>(static_cast<std::uint32_t>(y))));
  h = splitmix(h ^ static_cast<std::uint64_t>(dir));
  h = splitmix(h ^ ordinal);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace wss::wse
