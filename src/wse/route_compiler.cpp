#include "wse/route_compiler.hpp"

namespace wss::wse {

RoutingTable compile_spmv_routes(int x, int y, int width, int height) {
  RoutingTable table;

  // Own broadcast color: fan out to every existing neighbor, and loop back
  // into the two local pseudo-channels (z-plus stream and main diagonal).
  const Color own = tessellation_color(x, y);
  RouteRule& out = table.rule(own);
  if (y > 0) out.add_forward(Dir::North);
  if (y + 1 < height) out.add_forward(Dir::South);
  if (x + 1 < width) out.add_forward(Dir::East);
  if (x > 0) out.add_forward(Dir::West);
  out.deliver_channels = {kChanLoopZp, kChanLoopC};

  // Each neighbor's color: consume into the ramp channel equal to the
  // color. Single-hop traffic: no forwarding.
  auto deliver_neighbor = [&](int nx, int ny) {
    if (nx < 0 || nx >= width || ny < 0 || ny >= height) return;
    const Color c = tessellation_color(nx, ny);
    table.rule(c).deliver_channels.push_back(c);
  };
  deliver_neighbor(x + 1, y);
  deliver_neighbor(x - 1, y);
  deliver_neighbor(x, y + 1);
  deliver_neighbor(x, y - 1);
  return table;
}

AllReduceGeometry allreduce_geometry(int width, int height) {
  AllReduceGeometry g;
  g.cxl = (width - 2) / 2;
  g.cxr = g.cxl + 1;
  g.cyt = (height - 2) / 2;
  g.cyb = g.cyt + 1;
  return g;
}

void add_allreduce_routes(RoutingTable& table, int x, int y, int width,
                          int height, Color color_base) {
  const AllReduceGeometry g = allreduce_geometry(width, height);
  const Color c_row = color_base;
  const Color c_col = static_cast<Color>(color_base + 1);
  const Color c_quad = static_cast<Color>(color_base + 2);
  const Color c_final = static_cast<Color>(color_base + 3);
  const Color c_bcast = static_cast<Color>(color_base + 4);

  // Row reduction: values flow toward the center pair of columns. Center
  // tiles consume (including their own injected value, via loopback).
  {
    RouteRule& r = table.rule(c_row);
    if (x < g.cxl) {
      r.add_forward(Dir::East);
    } else if (x > g.cxr) {
      r.add_forward(Dir::West);
    } else {
      r.deliver_channels.push_back(c_row);
    }
  }

  // Column reduction along the two center columns.
  if (g.is_row_center(x)) {
    RouteRule& r = table.rule(c_col);
    if (y < g.cyt) {
      r.add_forward(Dir::South);
    } else if (y > g.cyb) {
      r.add_forward(Dir::North);
    } else {
      r.deliver_channels.push_back(c_col);
    }
  }

  // 4:1 reduction: the two west-center tiles send east to their east-center
  // partners...
  if (g.is_col_center(y)) {
    RouteRule& r = table.rule(c_quad);
    if (x == g.cxl) {
      r.add_forward(Dir::East);
    } else if (x == g.cxr) {
      r.deliver_channels.push_back(c_quad);
    }
  }
  // ...then the north-east center sends south along the root column.
  if (x == g.cxr) {
    RouteRule& r = table.rule(c_final);
    if (y >= g.cyt && y < g.cyb) {
      r.add_forward(Dir::South);
    } else if (y == g.cyb) {
      r.deliver_channels.push_back(c_final);
    }
  }

  // Broadcast from the root (cxr, cyb): along the root column both ways,
  // fanning out across every row; every tile consumes a copy.
  {
    RouteRule& r = table.rule(c_bcast);
    if (x == g.cxr) {
      if (y < g.cyb && y > 0) r.add_forward(Dir::North);
      if (y > g.cyb && y + 1 < height) r.add_forward(Dir::South);
      if (y == g.cyb) {
        // The root: seed both column directions and its own row.
        if (y > 0) r.add_forward(Dir::North);
        if (y + 1 < height) r.add_forward(Dir::South);
      }
      if (x > 0) r.add_forward(Dir::West);
      if (x + 1 < width) r.add_forward(Dir::East);
    } else if (x < g.cxr) {
      if (x > 0) r.add_forward(Dir::West);
    } else {
      if (x + 1 < width) r.add_forward(Dir::East);
    }
    r.deliver_channels.push_back(c_bcast);
  }
}

RoutingTable compile_stencilfe_routes(int x, int y, int width, int height,
                                      bool periodic) {
  RoutingTable rt;
  // Interior axis exchange: identical to the proven stencil9 parity scheme.
  if (x + 1 < width) {
    rt.rule(stencilfe_send_east(x)).add_forward(Dir::East);
    rt.rule(stencilfe_send_west(x + 1))
        .deliver_channels.push_back(stencilfe_send_west(x + 1));
  }
  if (x > 0) {
    rt.rule(stencilfe_send_west(x)).add_forward(Dir::West);
    rt.rule(stencilfe_send_east(x - 1))
        .deliver_channels.push_back(stencilfe_send_east(x - 1));
  }
  if (y + 1 < height) {
    rt.rule(stencilfe_send_south(y)).add_forward(Dir::South);
    rt.rule(stencilfe_send_north(y + 1))
        .deliver_channels.push_back(stencilfe_send_north(y + 1));
  }
  if (y > 0) {
    rt.rule(stencilfe_send_north(y)).add_forward(Dir::North);
    rt.rule(stencilfe_send_south(y - 1))
        .deliver_channels.push_back(stencilfe_send_south(y - 1));
  }
  if (!periodic) return rt;

  // Wrap lanes: the west edge's own value travels the whole row east and
  // lands as the east edge's east ghost (and vice versa); the north edge's
  // assembled row packet travels the whole column south and lands as the
  // south edge's south row (and vice versa). Exactly one injector per
  // row/column, so intermediate tiles only forward.
  if (x + 1 < width) rt.rule(kStencilWrapEast).add_forward(Dir::East);
  if (x == width - 1) {
    rt.rule(kStencilWrapEast).deliver_channels.push_back(kStencilWrapEast);
  }
  if (x > 0) rt.rule(kStencilWrapWest).add_forward(Dir::West);
  if (x == 0) {
    rt.rule(kStencilWrapWest).deliver_channels.push_back(kStencilWrapWest);
  }
  if (y + 1 < height) rt.rule(kStencilWrapSouth).add_forward(Dir::South);
  if (y == height - 1) {
    rt.rule(kStencilWrapSouth).deliver_channels.push_back(kStencilWrapSouth);
  }
  if (y > 0) rt.rule(kStencilWrapNorth).add_forward(Dir::North);
  if (y == 0) {
    rt.rule(kStencilWrapNorth).deliver_channels.push_back(kStencilWrapNorth);
  }
  return rt;
}

int verify_tessellation(int width, int height) {
  int violations = 0;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const Color own = tessellation_color(x, y);
      Color in[4];
      int n = 0;
      if (x + 1 < width) in[n++] = tessellation_color(x + 1, y);
      if (x > 0) in[n++] = tessellation_color(x - 1, y);
      if (y + 1 < height) in[n++] = tessellation_color(x, y + 1);
      if (y > 0) in[n++] = tessellation_color(x, y - 1);
      for (int i = 0; i < n; ++i) {
        if (in[i] == own) ++violations;
        for (int j = i + 1; j < n; ++j) {
          if (in[i] == in[j]) ++violations;
        }
      }
    }
  }
  return violations;
}

} // namespace wss::wse
