#pragma once

// The per-tile program representation: memory layout, data structure
// registers (DSRs) holding tensor/fabric/FIFO descriptors, tasks made of
// steps, and the tensor instructions that constitute all executable code —
// mirroring the structure of the paper's Listing 1, where "most of the code
// specifies DSR setup and task dependencies; the executable code itself is
// just the arithmetic that operates over the above structure."

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "wse/types.hpp"

namespace wss::wse {

/// Memory tensor descriptor (a DSR): base offset in halfwords, element
/// count, stride in elements, dtype, and an advancing position that
/// persists across task invocations (this is what lets the summation task
/// "add once to each element of the result" across many activations).
struct TensorDesc {
  int base = 0;
  int len = 0;
  int stride = 1;
  DType dtype = DType::F16;
  int pos = 0;

  [[nodiscard]] bool exhausted() const { return pos >= len; }
  [[nodiscard]] int addr_at(int i) const {
    return base + i * stride * halfwords(dtype);
  }
};

/// Fabric tensor descriptor: a stream of `len` words on a channel. The
/// completion trigger mirrors the paper's .trig/.act fields.
struct FabricDesc {
  int channel = -1; ///< local RX channel, or TX color for sends
  int len = 0;
  DType dtype = DType::F16;
  int pos = 0;
  TaskId trig = kNoTask;
  TrigAction act = TrigAction::None;

  [[nodiscard]] bool exhausted() const { return pos >= len; }
};

/// Hardware-managed in-memory FIFO (circular buffer of fp16 elements) with
/// on-push task activation — the paper's distinctive mechanism connecting
/// multiply threads to the summation task.
struct FifoState {
  int base = 0;     ///< halfword offset of the buffer
  int capacity = 0; ///< elements
  int head = 0;
  int tail = 0;
  int count = 0;
  TaskId on_push = kNoTask;

  [[nodiscard]] bool full() const { return count >= capacity; }
  [[nodiscard]] bool empty() const { return count == 0; }
};

/// Tensor instruction opcodes. Each runs for many cycles over its
/// descriptors, synchronously or as a background thread.
enum class OpKind : std::uint8_t {
  MulVV,          ///< dst[i] = src1[i] * src2[i]
  AddVV,          ///< dst[i] = src1[i] + src2[i]
  CopyV,          ///< dst[i] = src1[i]
  AxpyV,          ///< dst[i] += scalar * src1[i]  (FMAC)
  ScaleXPayV,     ///< dst[i] = src1[i] + scalar * src2[i]
  LifeV,          ///< dst[i] = Conway rule(count=src1[i], alive=src2[i])
  Send,           ///< fabric <- src1 (memory), one word per element
  SendScalar,     ///< fabric <- scalar register (len words, repeated)
  RecvToMem,      ///< dst <- fabric
  RecvAddTo,      ///< dst[i] += fabric word (the main-diagonal add)
  RecvMulToFifo,  ///< fifo <- fabric * src1[i] (the multiply threads)
  FifoAddTo,      ///< dst[i] += fifo pop; drains until empty or dst done
  RecvAccScalar,  ///< scalar += fabric word (fp32), len words (AllReduce)
  DotMixed,       ///< scalar(fp32) += src1[i]*src2[i] (fp16 mul / fp32 add)
  DotLocal,       ///< like DotMixed but src2 == src1 allowed (norm)
  SetScalar,      ///< scalar = immediate (control plumbing)
  // Scalar-register arithmetic (fp32, one cycle): the per-tile alpha/
  // omega/beta computations of the BiCGStab recurrence. Every tile
  // computes them redundantly from the broadcast reductions.
  ScalarAdd,      ///< scalar = scalar_a + scalar_b
  ScalarSub,      ///< scalar = scalar_a - scalar_b
  ScalarMul,      ///< scalar = scalar_a * scalar_b
  ScalarDiv,      ///< scalar = scalar_a / scalar_b
  ScalarMulImm,   ///< scalar = scalar_a * imm   (imm = -1: negate; copy: 1)
};

/// One tensor instruction. Operands reference the tile program's descriptor
/// tables by index; unused operands stay -1.
struct Instr {
  OpKind op{};
  int dst = -1;    ///< TensorDesc id
  int src1 = -1;   ///< TensorDesc id
  int src2 = -1;   ///< TensorDesc id
  int fabric = -1; ///< FabricDesc id
  int fifo = -1;   ///< FifoState id
  int scalar = -1; ///< scalar register id (destination for scalar ops)
  int scalar_a = -1; ///< scalar operand
  int scalar_b = -1; ///< scalar operand
  double imm = 0.0;
  /// Fired when the instruction completes (in addition to any fabric
  /// descriptor trigger).
  TaskId trig = kNoTask;
  TrigAction act = TrigAction::None;
};

/// A step in a task body. Launch installs an instruction on a background
/// thread slot and continues; Sync runs one on the main thread to
/// completion; the control steps manipulate task scheduling state exactly
/// like the paper's block()/unblock()/activate() special instructions.
/// SetPhase / MarkIteration are profiler annotations (docs/PROFILING.md):
/// free control steps that never cost a datapath cycle, so instrumented and
/// uninstrumented programs have bit-identical timing.
struct TaskStep {
  enum class Kind : std::uint8_t {
    Launch,
    Sync,
    Block,
    Unblock,
    Activate,
    SetDone, ///< raise the tile's completion flag (stand-in for `bicg`)
    SetPhase,      ///< set the core's sticky ProgPhase (target = phase value)
    MarkIteration, ///< bump the core's iteration counter (profiler windows)
  };
  Kind kind{};
  int thread_slot = -1;
  Instr instr{};
  TaskId target = kNoTask;
};

/// Phase-marker step: annotates all following cycles (until the next
/// marker) as belonging to `phase`.
[[nodiscard]] inline TaskStep set_phase_step(ProgPhase phase) {
  TaskStep s;
  s.kind = TaskStep::Kind::SetPhase;
  s.target = static_cast<int>(phase);
  return s;
}

/// Iteration-boundary marker step (one per solver iteration, on every tile).
[[nodiscard]] inline TaskStep mark_iteration_step() {
  TaskStep s;
  s.kind = TaskStep::Kind::MarkIteration;
  return s;
}

struct Task {
  std::string name;
  bool priority = false; ///< the paper's __priority__ marker on sumtask
  bool blocked = false;
  bool activated = false;
  std::vector<TaskStep> steps;
};

/// The complete program for one tile.
struct TileProgram {
  std::vector<TensorDesc> tensors;
  std::vector<FabricDesc> fabrics;
  std::vector<FifoState> fifos;
  std::vector<Task> tasks;
  int memory_halfwords = 0;       ///< allocated memory extent
  int num_scalars = 0;
  TaskId initial_task = kNoTask;  ///< activated at cycle 0

  int add_tensor(TensorDesc t) {
    tensors.push_back(t);
    return static_cast<int>(tensors.size()) - 1;
  }
  int add_fabric(FabricDesc f) {
    fabrics.push_back(f);
    return static_cast<int>(fabrics.size()) - 1;
  }
  int add_fifo(FifoState f) {
    fifos.push_back(f);
    return static_cast<int>(fifos.size()) - 1;
  }
  TaskId add_task(Task t) {
    tasks.push_back(std::move(t));
    return static_cast<TaskId>(tasks.size()) - 1;
  }
};

/// Bump allocator for tile SRAM, in halfwords. Throws when a program
/// exceeds the 48 KB tile memory — the capacity wall Section VIII discusses.
class MemAllocator {
public:
  explicit MemAllocator(int memory_bytes) : limit_(memory_bytes / 2) {}

  int allocate(int elements, DType dtype) {
    const int need = elements * halfwords(dtype);
    if (next_ + need > limit_) {
      throw std::runtime_error(
          "tile memory exhausted: need " + std::to_string((next_ + need) * 2) +
          " bytes of " + std::to_string(limit_ * 2));
    }
    const int at = next_;
    next_ += need;
    return at;
  }

  [[nodiscard]] int used_halfwords() const { return next_; }
  [[nodiscard]] int used_bytes() const { return next_ * 2; }

private:
  int next_ = 0;
  int limit_;
};

} // namespace wss::wse
