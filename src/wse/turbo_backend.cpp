// Turbo backend phases (docs/BACKENDS.md; state in turbo_backend.hpp).
//
// Every loop here is the corresponding reference loop with provably-empty
// work skipped: the route phase walks only occupied virtual channels (via
// RouterState::in_occ, in the same ascending color order the reference
// scan uses), the core phase steps only unparked cores (a parked core's
// step is exactly step_parked()), and the link phase arbitrates only
// occupied output colors (same round-robin order). The active-flit code is
// copied from fabric.cpp verbatim minus the observer/fault hooks — which
// is sound only because any attached observer or fault plan demotes the
// whole fabric to the reference phases (Fabric::turbo_demoted). Bit
// identity is enforced by tests/wse/backend_conformance_test.cpp.

#include <algorithm>
#include <bit>

#include "wse/fabric.hpp"

namespace wss::wse {

void Fabric::turbo_promote() {
  if (turbo_ == nullptr) {
    turbo_ = std::make_unique<TurboState>(tiles_.size());
  }
  TurboState& ts = *turbo_;
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    const Tile& t = tiles_[i];
    ts.configured[i] = t.core != nullptr ? 1 : 0;
    // TileCore::quiescent() is exactly the absorbing parked predicate: no
    // occupied slot, no runnable task, empty ramp queues.
    ts.parked[i] = (t.core != nullptr && t.core->quiescent()) ? 1 : 0;
    ts.done[i] = (t.core != nullptr && t.core->done()) ? 1 : 0;
    ts.route_pending[i].store(t.router.in_any() ? 1 : 0,
                              std::memory_order_relaxed);
    ts.link_pending[i] = t.router.out_any() ? 1 : 0;
  }
  ts.live = true;
  ++ts.stats.promotions;
}

void Fabric::turbo_step() {
  TurboState& ts = *turbo_;
  const int bands = band_count();
  ts.band.assign(static_cast<std::size_t>(bands), TurboState::BandCounters{});
  if (bands <= 1) {
    turbo_route_phase(0, height_, 0);
    turbo_core_phase(0, height_, 0);
    stats_.link_transfers += turbo_link_phase(0, height_, 0);
  } else {
    // Same row banding, same pool, same per-phase barriers as the
    // reference path — the banded determinism contract (docs/SIMULATOR.md)
    // carries over unchanged, so turbo x threads is still bit-identical.
    ensure_pool(bands);
    pool_->run([&](int band) {
      const auto [y0, y1] = band_rows(band, bands);
      turbo_route_phase(y0, y1, band);
    });
    pool_->run([&](int band) {
      const auto [y0, y1] = band_rows(band, bands);
      turbo_core_phase(y0, y1, band);
    });
    band_link_transfers_.assign(static_cast<std::size_t>(bands), 0);
    pool_->run([&](int band) {
      const auto [y0, y1] = band_rows(band, bands);
      band_link_transfers_[static_cast<std::size_t>(band)] =
          turbo_link_phase(y0, y1, band);
    });
    for (const std::uint64_t n : band_link_transfers_) {
      stats_.link_transfers += n;
    }
  }
  for (const auto& bc : ts.band) {
    ts.stats.parked_tile_cycles += bc.parked;
    ts.stats.contended_tile_cycles += bc.contended;
  }
  ++ts.stats.turbo_cycles;
  ++stats_.cycles;
  // No sampler tail: an attached sampler is a demotion trigger, so the
  // turbo path never has one.
}

void Fabric::turbo_route_phase(int y0, int y1, int band) {
  TurboState& ts = *turbo_;
  auto& bc = ts.band[static_cast<std::size_t>(band)];
  const std::size_t i0 =
      static_cast<std::size_t>(y0) * static_cast<std::size_t>(width_);
  const std::size_t i1 =
      static_cast<std::size_t>(y1) * static_cast<std::size_t>(width_);
  for (std::size_t i = i0; i < i1; ++i) {
    // Unconfigured tiles never forward (reference parity: route_phase
    // skips them), so a hole tile's pending flag just stays set.
    if (ts.configured[i] == 0) continue;
    if (ts.route_pending[i].load(std::memory_order_relaxed) == 0) continue;
    Tile& t = tiles_[i];
    bool delivered = false;
    for (int d = 0; d < 4; ++d) {
      // Iterating set bits ascending == the reference's c = 0..23 scan.
      std::uint32_t m = t.router.in_occ[static_cast<std::size_t>(d)];
      while (m != 0) {
        const int c = std::countr_zero(m);
        m &= m - 1;
        auto& q = t.router.in_queues[static_cast<std::size_t>(d)]
                                    [static_cast<std::size_t>(c)];
        while (!q.empty()) {
          const Flit flit = q.front();
          const RouteRule& rule = t.router.table.rule(flit.color);
          bool space = true;
          for (int od = 0; od < 4 && space; ++od) {
            if (rule.forwards_to(static_cast<Dir>(od)) &&
                static_cast<int>(
                    t.router.out_queues[static_cast<std::size_t>(od)]
                                       [flit.color]
                        .size()) >= sim_.router_queue_depth) {
              space = false;
            }
          }
          for (std::size_t ci = 0; space && ci < rule.deliver_channels.size();
               ++ci) {
            if (!t.core->can_deliver(rule.deliver_channels[ci])) {
              space = false;
            }
          }
          if (!space) {
            // Backpressure: the flit stays in its virtual channel, exactly
            // as on reference. Count the slow-path visit and move on.
            ++bc.contended;
            break;
          }
          if (!rule.deliver_channels.empty()) delivered = true;
          for (int ch : rule.deliver_channels) {
            t.core->try_deliver(ch, flit.payload);
          }
          for (int od = 0; od < 4; ++od) {
            if (rule.forwards_to(static_cast<Dir>(od))) {
              auto& oq = t.router.out_queues[static_cast<std::size_t>(od)]
                                            [flit.color];
              oq.push_back(flit);
              occ_set(t.router.out_occ[static_cast<std::size_t>(od)],
                      flit.color);
              ts.link_pending[i] = 1;
              ++t.router.stats.flits_forwarded;
              t.router.stats.queue_highwater =
                  std::max(t.router.stats.queue_highwater,
                           static_cast<std::uint64_t>(oq.size()));
            }
          }
          q.pop_front();
        }
        if (q.empty()) {
          occ_clear(t.router.in_occ[static_cast<std::size_t>(d)], c);
        }
      }
    }
    // A delivery fills a ramp queue, so the core is no longer in the
    // absorbing idle state: it must really step this very cycle (the
    // reference core would see the delivered word now).
    if (delivered) ts.parked[i] = 0;
    ts.route_pending[i].store(t.router.in_any() ? 1 : 0,
                              std::memory_order_relaxed);
  }
}

void Fabric::turbo_core_phase(int y0, int y1, int band) {
  TurboState& ts = *turbo_;
  auto& bc = ts.band[static_cast<std::size_t>(band)];
  const std::size_t i0 =
      static_cast<std::size_t>(y0) * static_cast<std::size_t>(width_);
  const std::size_t i1 =
      static_cast<std::size_t>(y1) * static_cast<std::size_t>(width_);
  for (std::size_t i = i0; i < i1; ++i) {
    if (ts.configured[i] == 0) continue;
    Tile& t = tiles_[i];
    // The Tile array stride is multiple KB and each core is its own heap
    // allocation, so a parked ocean pays ~2 cache misses per tile here
    // (the phase's dominant cost). Overlap them a few tiles ahead.
    if (i + 4 < i1) __builtin_prefetch(&tiles_[i + 4]);
    if (i + 1 < i1 && ts.configured[i + 1] != 0) {
      __builtin_prefetch(tiles_[i + 1].core.get());
    }
    if (ts.parked[i] != 0) {
      // Provably the whole effect of a reference step on this core.
      t.core->step_parked();
      ++bc.parked;
      continue;
    }
    const StepOutcome outcome = t.core->step(t.router, stats_.cycles);
    if (t.router.out_any()) ts.link_pending[i] = 1;
    ts.done[i] = t.core->done() ? 1 : 0;
    // Park on the cheap signal (an Idle outcome), confirmed by the full
    // predicate; once parked the core stays parked until a delivery or a
    // control reset — deliveries never activate tasks, so it cannot wake
    // itself.
    if (outcome == StepOutcome::Idle && t.core->quiescent()) {
      ts.parked[i] = 1;
    }
  }
}

std::uint64_t Fabric::turbo_link_phase(int y0, int y1, int band) {
  TurboState& ts = *turbo_;
  std::uint64_t transfers = 0;
  (void)band;
  for (int y = y0; y < y1; ++y) {
    for (int x = 0; x < width_; ++x) {
      const std::size_t i = tile_index(x, y);
      if (ts.link_pending[i] == 0) continue;
      Tile& t = tiles_[i];
      for (int d = 0; d < 4; ++d) {
        if (t.router.out_occ[static_cast<std::size_t>(d)] == 0) continue;
        const Dir dir = static_cast<Dir>(d);
        const auto [dx, dy] = wse::step(dir);
        const int nx = x + dx;
        const int ny = y + dy;
        if (!in_bounds(nx, ny)) continue;
        const std::size_t ni = tile_index(nx, ny);
        Tile& nb = tiles_[ni];
        auto& in_queues =
            nb.router.in_queues[static_cast<std::size_t>(opposite(dir))];
        int budget = sim_.link_halfwords_per_cycle;
        auto& queues = t.router.out_queues[static_cast<std::size_t>(d)];
        int& rr = t.router.rr[static_cast<std::size_t>(d)];
        bool pushed = false;
        while (budget > 0) {
          const std::uint32_t occ =
              t.router.out_occ[static_cast<std::size_t>(d)];
          if (occ == 0) break;
          bool moved = false;
          for (int k = 0; k < kNumColors; ++k) {
            const int c = (rr + k) % kNumColors;
            if ((occ >> static_cast<unsigned>(c) & 1u) == 0) continue;
            auto& q = queues[static_cast<std::size_t>(c)];
            const int cost = q.front().wide ? 2 : 1;
            if (cost > budget) continue;
            auto& inq = in_queues[static_cast<std::size_t>(c)];
            if (flit_halfwords(inq) + cost >
                2 * sim_.link_halfwords_per_cycle) {
              continue;
            }
            const Flit flit = q.front();
            q.pop_front();
            if (q.empty()) {
              occ_clear(t.router.out_occ[static_cast<std::size_t>(d)], c);
            }
            budget -= cost;
            rr = (c + 1) % kNumColors;
            moved = true;
            inq.push_back(flit);
            occ_set(
                nb.router.in_occ[static_cast<std::size_t>(opposite(dir))], c);
            pushed = true;
            ++t.router.stats.link_words[static_cast<std::size_t>(d)];
            ++transfers;
            break;
          }
          if (!moved) break;
        }
        if (pushed) {
          // Cross-band marking: the destination tile may belong to another
          // band, hence the relaxed atomic (every writer stores 1).
          ts.route_pending[ni].store(1, std::memory_order_relaxed);
        }
      }
      if (!t.router.out_any()) ts.link_pending[i] = 0;
    }
  }
  return transfers;
}

bool Fabric::turbo_quiescent() const {
  // Mirror of the reference scan over the dense arrays. Reference parity
  // notes: unconfigured tiles are skipped entirely (the reference loop
  // `continue`s past them, queues and all), and parked implies core
  // quiescence by construction (parking requires it; deliveries unpark).
  const TurboState& ts = *turbo_;
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    if (ts.configured[i] == 0) continue;
    if (ts.route_pending[i].load(std::memory_order_relaxed) != 0) {
      return false;
    }
    if (ts.link_pending[i] != 0) return false;
    if (ts.parked[i] == 0 && !tiles_[i].core->quiescent()) return false;
  }
  return true;
}

bool Fabric::turbo_all_done() const {
  const TurboState& ts = *turbo_;
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    // Reference parity: an unconfigured tile makes all_done false.
    if (ts.configured[i] == 0 || ts.done[i] == 0) return false;
  }
  return true;
}

} // namespace wss::wse
