#include "wse/sim_pool.hpp"

#include <algorithm>

#include "common/env.hpp"

namespace wss::wse {

int resolve_sim_threads(int requested) {
  if (requested > 0) return std::min(requested, 256);
  // Strict: WSS_SIM_THREADS=garbage used to be silently ignored (the run
  // quietly went serial); now it fails loudly naming the variable.
  return static_cast<int>(env::parse_int("WSS_SIM_THREADS", 1, 1, 256));
}

SimThreadPool::SimThreadPool(int threads) {
  const int n = std::max(1, threads);
  errors_.resize(static_cast<std::size_t>(n));
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int band = 1; band < n; ++band) {
    workers_.emplace_back([this, band] { worker(band); });
  }
}

SimThreadPool::~SimThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void SimThreadPool::run(const std::function<void(int)>& fn) {
  if (workers_.empty()) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    pending_ = static_cast<int>(workers_.size());
    std::fill(errors_.begin(), errors_.end(), nullptr);
    ++generation_;
  }
  cv_start_.notify_all();
  try {
    fn(0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [this] { return pending_ == 0; });
  job_ = nullptr;
  for (auto& err : errors_) {
    if (err) {
      const std::exception_ptr first = err;
      std::fill(errors_.begin(), errors_.end(), nullptr);
      std::rethrow_exception(first);
    }
  }
}

void SimThreadPool::worker(int band) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    std::exception_ptr err;
    try {
      (*job)(band);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (err) errors_[static_cast<std::size_t>(band)] = err;
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

} // namespace wss::wse
