#include "wse/core.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

// Header-only recording surface; creates no link dependency on
// wss_telemetry (analysis lives there, the core only records).
#include "telemetry/flightrec.hpp"

namespace wss::wse {

namespace {

/// Local channel count: the color space plus a few loopback pseudo-channels.
constexpr int kNumLocalChannels = 32;

/// Elements an instruction may advance per datapath cycle. fp16 elementwise
/// ops run 4-way SIMD (the paper's AXPY case: 8 halfword reads + 4 writes
/// per cycle exactly saturates the 16B-read/8B-write memory ports, so the
/// one-instruction-per-cycle datapath model also respects memory bandwidth).
/// Mixed-precision FMAC runs 2/cycle; fabric sends and 32-bit fabric
/// receives run 1 word/cycle ("a core ... can receive only one from the
/// fabric [per cycle]").
int width_of(OpKind op, DType dtype) {
  switch (op) {
    case OpKind::MulVV:
    case OpKind::AddVV:
    case OpKind::CopyV:
    case OpKind::AxpyV:
    case OpKind::ScaleXPayV:
    case OpKind::LifeV:
    case OpKind::FifoAddTo:
    case OpKind::RecvToMem:
    case OpKind::RecvAddTo:
    case OpKind::RecvMulToFifo:
      return dtype == DType::F16 ? 4 : 1;
    case OpKind::DotMixed:
    case OpKind::DotLocal:
      return 2;
    case OpKind::Send:
      return dtype == DType::F16 ? 2 : 1; // 32-bit link: 2 packed fp16
    case OpKind::SendScalar:
    case OpKind::RecvAccScalar:
      return 1;
    case OpKind::SetScalar:
    case OpKind::ScalarAdd:
    case OpKind::ScalarSub:
    case OpKind::ScalarMul:
    case OpKind::ScalarDiv:
    case OpKind::ScalarMulImm:
      return 1;
  }
  return 1;
}

} // namespace

TileCore::TileCore(TileProgram program, const CS1Params& arch,
                   const SimParams& sim)
    : prog_(std::move(program)),
      pristine_(prog_),
      arch_(&arch),
      sim_(sim),
      memory_(static_cast<std::size_t>(arch.tile_memory_bytes / 2), 0),
      scalars_(static_cast<std::size_t>(prog_.num_scalars > 0 ? prog_.num_scalars : 1), 0.0f),
      ramp_queues_(kNumLocalChannels),
      slots_(static_cast<std::size_t>(arch.num_thread_slots) + 1) {
  if (prog_.memory_halfwords > arch.tile_memory_bytes / 2) {
    throw std::runtime_error("tile program exceeds 48KB SRAM");
  }
  if (prog_.initial_task != kNoTask) {
    prog_.tasks[static_cast<std::size_t>(prog_.initial_task)].activated = true;
  }
}

bool TileCore::can_deliver(int channel) const {
  return static_cast<int>(ramp_queues_[static_cast<std::size_t>(channel)].size()) <
         sim_.ramp_queue_depth;
}

bool TileCore::try_deliver(int channel, std::uint32_t payload) {
  auto& q = ramp_queues_[static_cast<std::size_t>(channel)];
  if (static_cast<int>(q.size()) >= sim_.ramp_queue_depth) {
    return false;
  }
  q.push_back(payload);
  ++stats_.words_received;
  stats_.ramp_highwater =
      std::max(stats_.ramp_highwater, static_cast<std::uint64_t>(q.size()));
  return true;
}

float TileCore::read_f32(int addr) const {
  const std::uint32_t lo = memory_[static_cast<std::size_t>(addr)];
  const std::uint32_t hi = memory_[static_cast<std::size_t>(addr) + 1];
  return std::bit_cast<float>(lo | (hi << 16));
}

void TileCore::write_f32(int addr, float v) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
  memory_[static_cast<std::size_t>(addr)] = static_cast<std::uint16_t>(bits & 0xFFFFu);
  memory_[static_cast<std::size_t>(addr) + 1] = static_cast<std::uint16_t>(bits >> 16);
}

void TileCore::host_write_f32(int addr, float v) { write_f32(addr, v); }
float TileCore::host_read_f32(int addr) const { return read_f32(addr); }

double TileCore::read_elem(const TensorDesc& t, int i) const {
  const int addr = t.addr_at(i);
  return t.dtype == DType::F16 ? read_f16(addr).to_double()
                               : static_cast<double>(read_f32(addr));
}

void TileCore::write_elem(const TensorDesc& t, int i, double v) {
  const int addr = t.addr_at(i);
  if (t.dtype == DType::F16) {
    write_f16(addr, fp16_t(v));
  } else {
    write_f32(addr, static_cast<float>(v));
  }
}

void TileCore::fire(TaskId task, TrigAction act) {
  if (task == kNoTask || act == TrigAction::None) return;
  Task& t = prog_.tasks[static_cast<std::size_t>(task)];
  if (act == TrigAction::Activate) {
    // Flight-recorder taps record *state transitions* only (not repeated
    // fires), so rings hold the forensic story, not FIFO-push noise.
    if (flightrec_ != nullptr && !t.activated) {
      flightrec_->record(tile_x_, tile_y_, current_cycle_,
                         telemetry::FlightEventKind::TaskActivate, task);
    }
    t.activated = true;
  } else {
    if (flightrec_ != nullptr && t.blocked) {
      flightrec_->record(tile_x_, tile_y_, current_cycle_,
                         telemetry::FlightEventKind::TaskUnblock, task);
    }
    t.blocked = false;
  }
}

bool TileCore::inject(RouterState& router, Color color,
                      std::uint32_t payload, bool wide) {
  const RouteRule& rule = router.table.rule(color);
  // All-targets-or-nothing multicast: every forward queue and every local
  // delivery queue must have space before the word leaves the core.
  for (int d = 0; d < 4; ++d) {
    if (rule.forwards_to(static_cast<Dir>(d)) &&
        static_cast<int>(router.out_queues[static_cast<std::size_t>(d)][color].size()) >=
            sim_.router_queue_depth) {
      return false;
    }
  }
  for (int ch : rule.deliver_channels) {
    if (static_cast<int>(ramp_queues_[static_cast<std::size_t>(ch)].size()) >=
        sim_.ramp_queue_depth) {
      return false;
    }
  }
  // Stamp provenance (injecting tile + cycle) for the critical-path
  // analyzer; simulator metadata only, invisible to the modeled hardware.
  Flit out{payload, color, wide, static_cast<std::int16_t>(tile_x_),
           static_cast<std::int16_t>(tile_y_),
           static_cast<std::uint32_t>(current_cycle_)};
  for (int d = 0; d < 4; ++d) {
    if (rule.forwards_to(static_cast<Dir>(d))) {
      auto& q = router.out_queues[static_cast<std::size_t>(d)][color];
      q.push_back(out);
      occ_set(router.out_occ[static_cast<std::size_t>(d)], color);
      ++router.stats.flits_forwarded;
      router.stats.queue_highwater = std::max(
          router.stats.queue_highwater, static_cast<std::uint64_t>(q.size()));
    }
  }
  for (int ch : rule.deliver_channels) {
    auto& q = ramp_queues_[static_cast<std::size_t>(ch)];
    q.push_back(payload);
    stats_.ramp_highwater =
        std::max(stats_.ramp_highwater, static_cast<std::uint64_t>(q.size()));
  }
  ++stats_.words_sent;
  return true;
}

namespace {
const char* opcode_name(OpKind op) {
  switch (op) {
    case OpKind::MulVV: return "MulVV";
    case OpKind::AddVV: return "AddVV";
    case OpKind::CopyV: return "CopyV";
    case OpKind::AxpyV: return "AxpyV";
    case OpKind::ScaleXPayV: return "ScaleXPayV";
    case OpKind::LifeV: return "LifeV";
    case OpKind::Send: return "Send";
    case OpKind::SendScalar: return "SendScalar";
    case OpKind::RecvToMem: return "RecvToMem";
    case OpKind::RecvAddTo: return "RecvAddTo";
    case OpKind::RecvMulToFifo: return "RecvMulToFifo";
    case OpKind::FifoAddTo: return "FifoAddTo";
    case OpKind::RecvAccScalar: return "RecvAccScalar";
    case OpKind::DotMixed: return "DotMixed";
    case OpKind::DotLocal: return "DotLocal";
    case OpKind::SetScalar: return "SetScalar";
    case OpKind::ScalarAdd: return "ScalarAdd";
    case OpKind::ScalarSub: return "ScalarSub";
    case OpKind::ScalarMul: return "ScalarMul";
    case OpKind::ScalarDiv: return "ScalarDiv";
    case OpKind::ScalarMulImm: return "ScalarMulImm";
  }
  return "?";
}
} // namespace

void TileCore::complete_instr(int slot, RouterState&) {
  RunningInstr& ri = *slots_[static_cast<std::size_t>(slot)];
  if (tracer_ != nullptr && tracer_->wants(tile_x_, tile_y_)) {
    tracer_->record(current_cycle_, tile_x_, tile_y_,
                    TraceEventKind::InstrComplete, opcode_name(ri.instr.op));
  }
  fire(ri.instr.trig, ri.instr.act);
  if (ri.instr.fabric >= 0) {
    const FabricDesc& f = prog_.fabrics[static_cast<std::size_t>(ri.instr.fabric)];
    fire(f.trig, f.act);
  }
  if (ri.from_sync) {
    waiting_sync_ = false;
    ++current_step_;
  }
  slots_[static_cast<std::size_t>(slot)].reset();
}

bool TileCore::advance(int slot, RouterState& router) {
  RunningInstr& ri = *slots_[static_cast<std::size_t>(slot)];
  const Instr& in = ri.instr;
  bool progressed = false;
  bool completed = false;

  auto dst_desc = [&]() -> TensorDesc& {
    return prog_.tensors[static_cast<std::size_t>(in.dst)];
  };
  auto src1_desc = [&]() -> TensorDesc& {
    return prog_.tensors[static_cast<std::size_t>(in.src1)];
  };
  auto src2_desc = [&]() -> TensorDesc& {
    return prog_.tensors[static_cast<std::size_t>(in.src2)];
  };

  switch (in.op) {
    case OpKind::MulVV:
    case OpKind::AddVV:
    case OpKind::CopyV:
    case OpKind::AxpyV:
    case OpKind::ScaleXPayV:
    case OpKind::LifeV: {
      TensorDesc& d = dst_desc();
      const int width = width_of(in.op, d.dtype);
      int n = 0;
      while (n < width && !d.exhausted()) {
        double v = 0.0;
        if (in.op == OpKind::MulVV) {
          TensorDesc& s1 = src1_desc();
          TensorDesc& s2 = src2_desc();
          v = (fp16_t(read_elem(s1, s1.pos)) * fp16_t(read_elem(s2, s2.pos)))
                  .to_double();
          ++s1.pos;
          ++s2.pos;
        } else if (in.op == OpKind::AddVV) {
          TensorDesc& s1 = src1_desc();
          TensorDesc& s2 = src2_desc();
          v = (fp16_t(read_elem(s1, s1.pos)) + fp16_t(read_elem(s2, s2.pos)))
                  .to_double();
          ++s1.pos;
          ++s2.pos;
        } else if (in.op == OpKind::CopyV) {
          TensorDesc& s1 = src1_desc();
          v = read_elem(s1, s1.pos);
          ++s1.pos;
        } else if (in.op == OpKind::AxpyV) {
          TensorDesc& s1 = src1_desc();
          const fp16_t a(scalars_[static_cast<std::size_t>(in.scalar)]);
          v = fmac(a, fp16_t(read_elem(s1, s1.pos)),
                   fp16_t(read_elem(d, d.pos)))
                  .to_double();
          ++s1.pos;
        } else if (in.op == OpKind::ScaleXPayV) { // dst = src1 + scalar*src2
          TensorDesc& s1 = src1_desc();
          TensorDesc& s2 = src2_desc();
          const fp16_t a(scalars_[static_cast<std::size_t>(in.scalar)]);
          v = fmac(a, fp16_t(read_elem(s2, s2.pos)),
                   fp16_t(read_elem(s1, s1.pos)))
                  .to_double();
          ++s1.pos;
          ++s2.pos;
        } else { // LifeV: Conway rule over exact small-integer fp16 counts.
          // src1 = live-neighbor count, src2 = current cell (0 or 1). All
          // values are small integers, exact in fp16, so the comparisons
          // below are exact too.
          TensorDesc& s1 = src1_desc();
          TensorDesc& s2 = src2_desc();
          const double count = read_elem(s1, s1.pos);
          const double alive = read_elem(s2, s2.pos);
          v = (count == 3.0 || (count == 2.0 && alive == 1.0)) ? 1.0 : 0.0;
          ++s1.pos;
          ++s2.pos;
        }
        write_elem(d, d.pos, v);
        ++d.pos;
        ++n;
      }
      progressed = n > 0;
      stats_.elements_processed += static_cast<std::uint64_t>(n);
      completed = d.exhausted();
      break;
    }

    case OpKind::Send: {
      FabricDesc& f = prog_.fabrics[static_cast<std::size_t>(in.fabric)];
      const int width = width_of(in.op, f.dtype);
      int n = 0;
      while (n < width && !f.exhausted()) {
        TensorDesc& s = src1_desc();
        std::uint32_t payload = 0;
        bool wide = false;
        if (f.dtype == DType::F16) {
          payload = read_f16(s.addr_at(s.pos)).bits();
        } else {
          payload = std::bit_cast<std::uint32_t>(read_f32(s.addr_at(s.pos)));
          wide = true;
        }
        if (!inject(router, static_cast<Color>(f.channel), payload, wide)) {
          break;
        }
        ++s.pos;
        ++f.pos;
        ++n;
      }
      progressed = n > 0;
      completed = f.exhausted();
      break;
    }

    case OpKind::SendScalar: {
      FabricDesc& f = prog_.fabrics[static_cast<std::size_t>(in.fabric)];
      if (!f.exhausted()) {
        const std::uint32_t payload = std::bit_cast<std::uint32_t>(
            scalars_[static_cast<std::size_t>(in.scalar)]);
        if (inject(router, static_cast<Color>(f.channel), payload, true)) {
          ++f.pos;
          progressed = true;
        }
      }
      completed = f.exhausted();
      break;
    }

    case OpKind::RecvToMem:
    case OpKind::RecvAddTo: {
      FabricDesc& f = prog_.fabrics[static_cast<std::size_t>(in.fabric)];
      TensorDesc& d = dst_desc();
      auto& q = ramp_queues_[static_cast<std::size_t>(f.channel)];
      const int width = width_of(in.op, d.dtype);
      int n = 0;
      while (n < width && !f.exhausted() && !q.empty()) {
        const std::uint32_t payload = q.front();
        q.pop_front();
        const fp16_t w = fp16_t::from_bits(static_cast<std::uint16_t>(payload));
        if (in.op == OpKind::RecvToMem) {
          write_elem(d, d.pos, w.to_double());
        } else {
          const fp16_t cur(read_elem(d, d.pos));
          write_elem(d, d.pos, (cur + w).to_double());
        }
        ++d.pos;
        ++f.pos;
        ++n;
      }
      progressed = n > 0;
      stats_.elements_processed += static_cast<std::uint64_t>(n);
      completed = f.exhausted();
      break;
    }

    case OpKind::RecvMulToFifo: {
      FabricDesc& f = prog_.fabrics[static_cast<std::size_t>(in.fabric)];
      TensorDesc& s = src1_desc();
      FifoState& fifo = prog_.fifos[static_cast<std::size_t>(in.fifo)];
      auto& q = ramp_queues_[static_cast<std::size_t>(f.channel)];
      const int width = width_of(in.op, DType::F16);
      int n = 0;
      while (n < width && !f.exhausted() && !q.empty() && !fifo.full()) {
        const fp16_t w =
            fp16_t::from_bits(static_cast<std::uint16_t>(q.front()));
        q.pop_front();
        const fp16_t a(read_elem(s, s.pos));
        const fp16_t prod = w * a;
        memory_[static_cast<std::size_t>(fifo.base + fifo.tail)] = prod.bits();
        fifo.tail = (fifo.tail + 1) % fifo.capacity;
        ++fifo.count;
        if (static_cast<std::uint64_t>(fifo.count) > stats_.fifo_highwater) {
          stats_.fifo_highwater = static_cast<std::uint64_t>(fifo.count);
          if (flightrec_ != nullptr) {
            flightrec_->record(tile_x_, tile_y_, current_cycle_,
                               telemetry::FlightEventKind::FifoHighwater,
                               in.fifo, fifo.count);
          }
        }
        fire(fifo.on_push, TrigAction::Activate);
        ++s.pos;
        ++f.pos;
        ++n;
      }
      progressed = n > 0;
      stats_.elements_processed += static_cast<std::uint64_t>(n);
      completed = f.exhausted();
      break;
    }

    case OpKind::FifoAddTo: {
      FifoState& fifo = prog_.fifos[static_cast<std::size_t>(in.fifo)];
      TensorDesc& d = dst_desc();
      const int width = width_of(in.op, d.dtype);
      int n = 0;
      while (n < width && !fifo.empty() && !d.exhausted()) {
        const fp16_t w = fp16_t::from_bits(
            memory_[static_cast<std::size_t>(fifo.base + fifo.head)]);
        fifo.head = (fifo.head + 1) % fifo.capacity;
        --fifo.count;
        const fp16_t cur(read_elem(d, d.pos));
        write_elem(d, d.pos, (cur + w).to_double());
        ++d.pos;
        ++n;
      }
      progressed = n > 0;
      stats_.elements_processed += static_cast<std::uint64_t>(n);
      // "Each add pulls as much data as it can from its input FIFO,
      // finishing when empty."
      completed = fifo.empty() || d.exhausted();
      break;
    }

    case OpKind::RecvAccScalar: {
      FabricDesc& f = prog_.fabrics[static_cast<std::size_t>(in.fabric)];
      auto& q = ramp_queues_[static_cast<std::size_t>(f.channel)];
      if (!f.exhausted() && !q.empty()) {
        const float w = std::bit_cast<float>(q.front());
        q.pop_front();
        scalars_[static_cast<std::size_t>(in.scalar)] += w; // fp32 add
        ++f.pos;
        progressed = true;
        ++stats_.elements_processed;
      }
      completed = f.exhausted();
      break;
    }

    case OpKind::DotMixed:
    case OpKind::DotLocal: {
      TensorDesc& s1 = src1_desc();
      TensorDesc& s2 = src2_desc();
      const int width = width_of(in.op, DType::F16);
      int n = 0;
      while (n < width && !s1.exhausted()) {
        const fp16_t a(read_elem(s1, s1.pos));
        const fp16_t b(read_elem(s2, s2.pos));
        float& acc = scalars_[static_cast<std::size_t>(in.scalar)];
        acc = mixed_fma(a, b, acc);
        ++s1.pos;
        ++s2.pos;
        ++n;
      }
      progressed = n > 0;
      stats_.elements_processed += static_cast<std::uint64_t>(n);
      completed = s1.exhausted();
      break;
    }

    case OpKind::SetScalar: {
      scalars_[static_cast<std::size_t>(in.scalar)] =
          static_cast<float>(in.imm);
      progressed = true;
      completed = true;
      break;
    }

    case OpKind::ScalarAdd:
    case OpKind::ScalarSub:
    case OpKind::ScalarMul:
    case OpKind::ScalarDiv:
    case OpKind::ScalarMulImm: {
      const float a = scalars_[static_cast<std::size_t>(in.scalar_a)];
      float out = 0.0f;
      switch (in.op) {
        case OpKind::ScalarAdd:
          out = a + scalars_[static_cast<std::size_t>(in.scalar_b)];
          break;
        case OpKind::ScalarSub:
          out = a - scalars_[static_cast<std::size_t>(in.scalar_b)];
          break;
        case OpKind::ScalarMul:
          out = a * scalars_[static_cast<std::size_t>(in.scalar_b)];
          break;
        case OpKind::ScalarDiv:
          out = a / scalars_[static_cast<std::size_t>(in.scalar_b)];
          break;
        default:
          out = a * static_cast<float>(in.imm);
          break;
      }
      scalars_[static_cast<std::size_t>(in.scalar)] = out;
      progressed = true;
      completed = true;
      break;
    }
  }

  if (completed) {
    complete_instr(slot, router);
  }
  return progressed;
}

void TileCore::run_scheduler() {
  // Hardware scheduling is implemented directly ("there is little delay
  // between the completion of a task and the start of a subsequent task"):
  // within one cycle the scheduler picks a ready task and drains its
  // control/launch steps until it must wait on a sync instruction or the
  // task ends. Instruction *execution* still costs datapath cycles; only
  // the bookkeeping is free-flowing.
  if (current_task_ == kNoTask) {
    TaskId pick = kNoTask;
    for (std::size_t i = 0; i < prog_.tasks.size(); ++i) {
      Task& t = prog_.tasks[i];
      if (!t.activated || t.blocked) continue;
      if (pick == kNoTask ||
          (t.priority &&
           !prog_.tasks[static_cast<std::size_t>(pick)].priority)) {
        pick = static_cast<TaskId>(i);
      }
    }
    if (pick == kNoTask) return;
    prog_.tasks[static_cast<std::size_t>(pick)].activated = false;
    current_task_ = pick;
    current_step_ = 0;
    waiting_sync_ = false;
    ++stats_.task_invocations;
    if (tracer_ != nullptr && tracer_->wants(tile_x_, tile_y_)) {
      tracer_->record(current_cycle_, tile_x_, tile_y_,
                      TraceEventKind::TaskStart,
                      prog_.tasks[static_cast<std::size_t>(pick)].name);
    }
    if (flightrec_ != nullptr) {
      flightrec_->record(tile_x_, tile_y_, current_cycle_,
                         telemetry::FlightEventKind::TaskStart, pick);
    }
  }

  if (waiting_sync_) return;
  Task& t = prog_.tasks[static_cast<std::size_t>(current_task_)];
  while (current_step_ < t.steps.size()) {
    TaskStep& step = t.steps[current_step_];
    if (step.kind == TaskStep::Kind::Launch) {
      auto& slot = slots_[static_cast<std::size_t>(step.thread_slot)];
      if (slot.has_value()) {
        return; // thread slot busy: wait (programs shouldn't do this)
      }
      slot = RunningInstr{step.instr, false};
      ++current_step_;
    } else if (step.kind == TaskStep::Kind::Sync) {
      auto& slot = slots_[static_cast<std::size_t>(arch_->num_thread_slots)];
      if (slot.has_value()) return;
      slot = RunningInstr{step.instr, true};
      waiting_sync_ = true;
      return;
    } else {
      switch (step.kind) {
        case TaskStep::Kind::Block: {
          Task& target = prog_.tasks[static_cast<std::size_t>(step.target)];
          if (flightrec_ != nullptr && !target.blocked) {
            flightrec_->record(tile_x_, tile_y_, current_cycle_,
                               telemetry::FlightEventKind::TaskBlock,
                               step.target);
          }
          target.blocked = true;
          break;
        }
        case TaskStep::Kind::Unblock: {
          Task& target = prog_.tasks[static_cast<std::size_t>(step.target)];
          if (flightrec_ != nullptr && target.blocked) {
            flightrec_->record(tile_x_, tile_y_, current_cycle_,
                               telemetry::FlightEventKind::TaskUnblock,
                               step.target);
          }
          target.blocked = false;
          break;
        }
        case TaskStep::Kind::Activate: {
          Task& target = prog_.tasks[static_cast<std::size_t>(step.target)];
          if (flightrec_ != nullptr && !target.activated) {
            flightrec_->record(tile_x_, tile_y_, current_cycle_,
                               telemetry::FlightEventKind::TaskActivate,
                               step.target);
          }
          target.activated = true;
          break;
        }
        case TaskStep::Kind::SetDone:
          done_ = true;
          break;
        case TaskStep::Kind::SetPhase:
          // Profiler annotation: free, like all control steps, so marked
          // and unmarked programs have identical timing.
          phase_ = static_cast<ProgPhase>(step.target);
          if (flightrec_ != nullptr) {
            flightrec_->record(tile_x_, tile_y_, current_cycle_,
                               telemetry::FlightEventKind::PhaseMark,
                               step.target);
          }
          break;
        case TaskStep::Kind::MarkIteration:
          ++iteration_;
          if (flightrec_ != nullptr) {
            flightrec_->record(
                tile_x_, tile_y_, current_cycle_,
                telemetry::FlightEventKind::IterationMark,
                static_cast<std::int32_t>(iteration_ & 0x7fffffffu));
          }
          break;
        default:
          break;
      }
      ++current_step_;
    }
  }
  if (tracer_ != nullptr && tracer_->wants(tile_x_, tile_y_)) {
    tracer_->record(current_cycle_, tile_x_, tile_y_, TraceEventKind::TaskEnd,
                    t.name);
  }
  if (flightrec_ != nullptr) {
    flightrec_->record(tile_x_, tile_y_, current_cycle_,
                       telemetry::FlightEventKind::TaskEnd, current_task_);
  }
  current_task_ = kNoTask; // task body exhausted; next pick next cycle
}

StepOutcome TileCore::step(RouterState& router, std::uint64_t cycle) {
  current_cycle_ = cycle;
  run_scheduler();

  // Datapath: one instruction advances per cycle, chosen round-robin over
  // the occupied thread slots (background threads + the main sync slot).
  // Zero-work retirements (e.g. a FIFO drain finding its FIFO empty) do
  // not occupy the datapath: the hardware retires them in the scheduler.
  const int nslots = static_cast<int>(slots_.size());
  bool any_busy = false;
  bool saw_send = false;
  bool saw_recv = false;
  for (int k = 0; k < nslots; ++k) {
    const int slot = (rr_slot_ + k) % nslots;
    if (!slots_[static_cast<std::size_t>(slot)].has_value()) continue;
    any_busy = true;
    if (advance(slot, router)) {
      rr_slot_ = (slot + 1) % nslots;
      ++stats_.instr_cycles;
      return StepOutcome::Compute;
    }
    // No element progress: either stalled (slot still occupied — try the
    // next thread) or retired with zero work (slot freed — also try the
    // next thread without charging the datapath). For stalled slots,
    // classify the blocking port for the cycle-attribution profiler.
    auto& held = slots_[static_cast<std::size_t>(slot)];
    if (!held.has_value()) continue;
    switch (held->instr.op) {
      case OpKind::Send:
      case OpKind::SendScalar:
        saw_send = true;
        break;
      case OpKind::RecvToMem:
      case OpKind::RecvAddTo:
      case OpKind::RecvAccScalar:
        saw_recv = true;
        break;
      case OpKind::RecvMulToFifo: {
        // Two ways to make zero progress: the ramp channel is dry
        // (recv-starved) or the software FIFO behind it is full (output
        // backpressure — the summation task downstream can't keep up).
        const FabricDesc& f =
            prog_.fabrics[static_cast<std::size_t>(held->instr.fabric)];
        if (ramp_queues_[static_cast<std::size_t>(f.channel)].empty()) {
          saw_recv = true;
        } else {
          saw_send = true;
        }
        break;
      }
      default:
        break; // local ops never stall while occupied
    }
  }
  if (any_busy) {
    ++stats_.stall_cycles;
    if (tracer_ != nullptr && tracer_->wants(tile_x_, tile_y_)) {
      tracer_->record(current_cycle_, tile_x_, tile_y_,
                      TraceEventKind::Stall, "");
    }
    // Send-blocked outranks recv-starved: the tile that cannot drain its
    // output is the upstream cause; its starving receives are the effect.
    if (saw_send) return StepOutcome::StallSend;
    if (saw_recv) return StepOutcome::StallRecv;
    return StepOutcome::StallOther;
  }
  ++stats_.idle_cycles;
  return StepOutcome::Idle;
}

std::string TileCore::debug_state() const {
  std::string out;
  if (current_task_ != kNoTask) {
    const Task& t = prog_.tasks[static_cast<std::size_t>(current_task_)];
    out += "task=" + t.name + " step=" + std::to_string(current_step_) +
           (waiting_sync_ ? " (sync-wait)" : "");
  } else {
    out += "no-task";
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].has_value()) {
      out += " slot" + std::to_string(i) + "=op" +
             std::to_string(static_cast<int>(slots_[i]->instr.op));
      const Instr& in = slots_[i]->instr;
      if (in.fabric >= 0) {
        const FabricDesc& f = prog_.fabrics[static_cast<std::size_t>(in.fabric)];
        out += "(ch" + std::to_string(f.channel) + " " +
               std::to_string(f.pos) + "/" + std::to_string(f.len) + ")";
      }
    }
  }
  for (std::size_t c = 0; c < ramp_queues_.size(); ++c) {
    if (!ramp_queues_[c].empty()) {
      out += " q" + std::to_string(c) + ":" +
             std::to_string(ramp_queues_[c].size());
    }
  }
  if (done_) out += " DONE";
  return out;
}

std::vector<CoreWait> TileCore::waits() const {
  // Read-only port introspection for the post-mortem wait-for graph:
  // which fabric resource would have to move for each occupied slot to
  // make progress? Mirrors the stall classification in step().
  std::vector<CoreWait> out;
  for (const auto& slot : slots_) {
    if (!slot.has_value()) continue;
    const Instr& in = slot->instr;
    switch (in.op) {
      case OpKind::Send:
      case OpKind::SendScalar: {
        const FabricDesc& f =
            prog_.fabrics[static_cast<std::size_t>(in.fabric)];
        if (!f.exhausted()) {
          out.push_back({CoreWait::Kind::SendColor, f.channel});
        }
        break;
      }
      case OpKind::RecvToMem:
      case OpKind::RecvAddTo:
      case OpKind::RecvAccScalar: {
        const FabricDesc& f =
            prog_.fabrics[static_cast<std::size_t>(in.fabric)];
        if (!f.exhausted() &&
            ramp_queues_[static_cast<std::size_t>(f.channel)].empty()) {
          out.push_back({CoreWait::Kind::RecvChannel, f.channel});
        }
        break;
      }
      case OpKind::RecvMulToFifo: {
        const FabricDesc& f =
            prog_.fabrics[static_cast<std::size_t>(in.fabric)];
        if (f.exhausted()) break;
        if (ramp_queues_[static_cast<std::size_t>(f.channel)].empty()) {
          out.push_back({CoreWait::Kind::RecvChannel, f.channel});
        } else if (prog_.fifos[static_cast<std::size_t>(in.fifo)].full()) {
          out.push_back({CoreWait::Kind::FifoFull, in.fifo});
        }
        break;
      }
      default:
        break; // local ops never wait on the fabric
    }
  }
  return out;
}

bool TileCore::quiescent() const {
  for (const auto& s : slots_) {
    if (s.has_value()) return false;
  }
  if (current_task_ != kNoTask) return false;
  for (const auto& t : prog_.tasks) {
    if (t.activated && !t.blocked) return false;
  }
  for (const auto& q : ramp_queues_) {
    if (!q.empty()) return false;
  }
  return true;
}

void TileCore::reset_control() {
  prog_.tensors = pristine_.tensors;
  prog_.fabrics = pristine_.fabrics;
  prog_.fifos = pristine_.fifos;
  for (std::size_t i = 0; i < prog_.tasks.size(); ++i) {
    prog_.tasks[i].activated = pristine_.tasks[i].activated;
    prog_.tasks[i].blocked = pristine_.tasks[i].blocked;
  }
  for (auto& s : slots_) s.reset();
  current_task_ = kNoTask;
  current_step_ = 0;
  waiting_sync_ = false;
  done_ = false;
  phase_ = ProgPhase::Control;
  iteration_ = 0;
  if (prog_.initial_task != kNoTask) {
    prog_.tasks[static_cast<std::size_t>(prog_.initial_task)].activated = true;
  }
}

} // namespace wss::wse
