#pragma once

// Architectural parameters of the CS-1 as the paper states them (Section II)
// plus the one quantity the paper never states outright — the clock. We
// calibrate it so the validated cycle model reproduces the measured
// 28.1 us/iteration at 600x595x1536: 24,580 cycles / 28.1 us = 0.875 GHz.
// Cross-checks: the AllReduce then takes 1.38 us (paper: under 1.5 us) and
// the achieved 0.86 PFLOPS is 32% of the wafer's fp16 peak (paper: "about
// one third"). Sensitivity is documented in EXPERIMENTS.md.

#include <cstdint>

namespace wss::wse {

struct CS1Params {
  // --- stated in the paper ---
  int fabric_x = 602;   ///< compute fabric of the experimental machine
  int fabric_y = 595;
  std::int64_t marketed_cores = 380'000;
  int tile_memory_bytes = 48 * 1024;            ///< 48 KB SRAM per tile
  std::int64_t total_memory_bytes = 18LL << 30; ///< ~18 GB on wafer
  int simd_fp16_width = 4;       ///< 4-way SIMD on 16-bit operands
  int fp16_flops_per_cycle = 8;  ///< "up to eight 16-bit fp ops per cycle"
  int mixed_fmac_per_cycle = 2;  ///< fp16 mul / fp32 add FMACs per cycle
  int fp32_fmac_per_cycle = 1;
  int mem_read_bytes_per_cycle = 16;
  int mem_write_bytes_per_cycle = 8;
  int fabric_inject_bytes_per_cycle = 16;
  int hop_latency_cycles = 1;    ///< nanosecond-per-hop class latency
  int num_thread_slots = 9;      ///< concurrent threads per core
  double system_power_kw = 20.0;

  // --- calibrated (see header comment) ---
  double clock_hz = 0.875e9;

  [[nodiscard]] std::int64_t fabric_tiles() const {
    return static_cast<std::int64_t>(fabric_x) * fabric_y;
  }

  /// Peak flops/s in the mixed mode the paper's headline uses: 2 FMACs =
  /// 4 flops per core per cycle.
  [[nodiscard]] double peak_mixed_flops(std::int64_t active_cores) const {
    return static_cast<double>(active_cores) * 2.0 * 2.0 * clock_hz;
  }

  /// Peak fp16 flops/s (SIMD-4 FMAC = 8 ops/cycle).
  [[nodiscard]] double peak_fp16_flops(std::int64_t active_cores) const {
    return static_cast<double>(active_cores) * fp16_flops_per_cycle * clock_hz;
  }
};

/// Host-side execution backend for the fabric simulator (docs/BACKENDS.md).
/// A backend is an execution strategy, never a semantics change: every
/// backend is bit-identical to the reference interpreter — results, cycle
/// counts, heatmaps, counters — enforced by
/// tests/wse/backend_conformance_test.cpp.
///   Auto      — consult the WSS_SIM_BACKEND environment variable
///               ("reference" or "turbo"; default reference),
///   Reference — the straightforward per-tile object-graph interpreter,
///   Turbo     — occupancy-indexed SoA fast path: router phases visit only
///               queues that hold flits and provably-idle cores are parked,
///               demoting to reference stepping whenever observers (tracer,
///               profiler, flight recorder, sampler, watchdog) or a fault
///               plan are attached.
enum class Backend : std::uint8_t { Auto = 0, Reference, Turbo };

/// Simulator microarchitecture knobs (queue depths etc.) — not performance
/// claims, just enough buffering to keep the pipelined dataflow smooth, as
/// the hardware's per-channel queues do.
struct SimParams {
  int router_queue_depth = 4; ///< per (output port, color) queue
  int ramp_queue_depth = 8;   ///< per local channel at the core
  int fifo_default_depth = 20; ///< paper: "We used a FIFO depth of 20."
  /// 32-bit links: two packed fp16 words (or one fp32 word) per cycle.
  int link_halfwords_per_cycle = 2;
  /// Host-side simulation parallelism (NOT a property of the modeled
  /// machine): worker threads Fabric::step() shards its row bands over.
  /// 0 = consult the WSS_SIM_THREADS environment variable (default 1 =
  /// serial). Any value yields bit-identical results — see
  /// docs/SIMULATOR.md "Parallel simulation".
  int sim_threads = 0;
  /// No-progress watchdog window in cycles for Fabric::run (see
  /// docs/POSTMORTEM.md). 0 = consult the WSS_WATCHDOG_CYCLES environment
  /// variable (default 0 = disabled). Observation only — never changes
  /// simulated behaviour, just when run() gives up on a stalled fabric.
  std::uint64_t watchdog_cycles = 0;
  /// Host-side execution backend (NOT a property of the modeled machine):
  /// Auto = consult WSS_SIM_BACKEND (default reference). Any backend
  /// yields bit-identical results — see docs/BACKENDS.md.
  Backend backend = Backend::Auto;
};

} // namespace wss::wse
