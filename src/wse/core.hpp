#pragma once

// The tile core: 48 KB of halfword-addressed SRAM, a scalar register file,
// nine thread slots executing tensor instructions that share one datapath
// (one instruction advances per cycle, up to SIMD-4 fp16 elements), hardware
// FIFOs that activate tasks on push, and a task scheduler implementing the
// activate/block/unblock semantics of the paper's Listing 1.

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/fp16.hpp"
#include "wse/arch.hpp"
#include "wse/program.hpp"
#include "wse/routing.hpp"
#include "wse/trace.hpp"

namespace wss::telemetry {
class FlightRecorder; // telemetry/flightrec.hpp (header-only recording)
}

namespace wss::wse {

/// Per-router activity counters (telemetry: the fabric heatmaps). Kept as
/// plain always-on increments — the same cost class as the CoreStats the
/// simulator has always maintained.
struct RouterStats {
  std::uint64_t flits_forwarded = 0;  ///< flits pushed into output queues
  std::uint64_t queue_highwater = 0;  ///< max output-queue occupancy seen
  /// Flits moved out over each mesh link (indexed by Dir N/S/E/W) — the
  /// per-direction link-transfer heatmap layers. Maintained identically by
  /// both backends' link phases (the conformance suite compares them), so
  /// the sum over directions and tiles equals FabricStats.link_transfers.
  std::array<std::uint64_t, 4> link_words = {0, 0, 0, 0};
};

/// Router-side state owned by the fabric but fed by the core on injection.
struct RouterState {
  /// Queue-occupancy masks, one bit per color per mesh direction: bit c of
  /// in_occ[d] (out_occ[d]) is set iff in_queues[d][c] (out_queues[d][c])
  /// holds at least one flit. Maintained unconditionally by every queue
  /// mutation site — a couple of ALU ops per flit, nothing per empty
  /// queue — so the masks are exact whichever backend is stepping and the
  /// turbo backend (docs/BACKENDS.md) can promote without a queue scan.
  /// Placed first so the turbo phases' per-tile skip test touches the
  /// leading cache lines of the tile only.
  std::array<std::uint32_t, 4> in_occ = {0, 0, 0, 0};
  std::array<std::uint32_t, 4> out_occ = {0, 0, 0, 0};

  RoutingTable table;
  RouterStats stats;
  /// Per outgoing mesh direction, per color: queued flits awaiting the link.
  std::array<std::array<std::deque<Flit>, kNumColors>, 4> out_queues;
  /// Per-virtual-channel input queues per incoming mesh direction — the
  /// paper: "The router has hardware queues ... for each of a set of
  /// virtual channels, avoiding deadlock." Without per-color separation a
  /// blocked head flit of one color would head-of-line-block every other
  /// color on the link (which deadlocks two concurrent reduction trees).
  std::array<std::array<std::deque<Flit>, kNumColors>, 4> in_queues;
  /// Round-robin pointer per outgoing direction for color arbitration.
  std::array<int, 4> rr = {0, 0, 0, 0};

  [[nodiscard]] bool in_any() const {
    return (in_occ[0] | in_occ[1] | in_occ[2] | in_occ[3]) != 0;
  }
  [[nodiscard]] bool out_any() const {
    return (out_occ[0] | out_occ[1] | out_occ[2] | out_occ[3]) != 0;
  }
};

/// Occupancy-mask bookkeeping (see RouterState::in_occ): call occ_set after
/// pushing into an empty-or-not queue, occ_clear once a queue is observed
/// empty after popping.
inline void occ_set(std::uint32_t& mask, int color) {
  mask |= (1u << static_cast<unsigned>(color));
}
inline void occ_clear(std::uint32_t& mask, int color) {
  mask &= ~(1u << static_cast<unsigned>(color));
}

/// Halfword occupancy of a set of flits (wide flits count twice).
inline int flit_halfwords(const std::deque<Flit>& q) {
  int total = 0;
  for (const Flit& f : q) total += f.wide ? 2 : 1;
  return total;
}

/// Per-core activity counters for validating the performance model.
struct CoreStats {
  std::uint64_t instr_cycles = 0;   ///< cycles the datapath was busy
  std::uint64_t stall_cycles = 0;   ///< datapath had work but was blocked
  std::uint64_t idle_cycles = 0;
  std::uint64_t elements_processed = 0;
  std::uint64_t words_sent = 0;
  std::uint64_t words_received = 0;
  std::uint64_t task_invocations = 0;
  std::uint64_t fifo_highwater = 0;  ///< max software-FIFO occupancy
  std::uint64_t ramp_highwater = 0;  ///< max ramp-queue occupancy
};

/// What one core cycle amounted to, for the cycle-attribution profiler
/// (docs/PROFILING.md). Exactly one outcome per step():
///   Compute   — the datapath advanced an instruction,
///   StallSend — work present, blocked injecting into the fabric (router
///               out-queue / ramp backpressure, or a full software FIFO
///               behind a RecvMulToFifo — output backpressure either way),
///   StallRecv — work present, waiting on fabric words that have not
///               arrived (empty ramp queue),
///   StallOther— work present but neither port implicated (e.g. the only
///               occupied slot retired with zero work this cycle),
///   Idle      — no occupied thread slot.
/// StallSend takes precedence over StallRecv when both are present: an
/// outbound-blocked tile is the upstream cause, the starved ops its effect.
enum class StepOutcome : std::uint8_t {
  Idle = 0,
  Compute,
  StallSend,
  StallRecv,
  StallOther,
};

/// What an occupied thread slot is waiting on *right now* — the raw
/// material of the post-mortem wait-for graph (telemetry/postmortem.hpp).
/// Read-only introspection of the core's stalled ports:
///   RecvChannel — a receive op's ramp channel is dry: the tile waits on
///                 upstream wavelets of the colors routed to that channel,
///   SendColor   — a send op cannot inject color `id` (router out-queue /
///                 local ramp backpressure): the tile waits on downstream
///                 drain,
///   FifoFull    — a RecvMulToFifo is blocked on its own software FIFO
///                 (index `id`): the tile waits on its own drain task.
struct CoreWait {
  enum class Kind : std::uint8_t { RecvChannel, SendColor, FifoFull };
  Kind kind = Kind::RecvChannel;
  int id = 0;
};

class TileCore {
public:
  TileCore(TileProgram program, const CS1Params& arch, const SimParams& sim);

  /// Deliver a fabric word to a local channel queue; false => queue full,
  /// word must stay in the router (backpressure).
  bool try_deliver(int channel, std::uint32_t payload);

  /// True if a word could be delivered to `channel` right now.
  [[nodiscard]] bool can_deliver(int channel) const;

  /// Advance the core by one cycle. `router` is this tile's router, used
  /// for injection of outgoing words; `cycle` is the fabric's global cycle
  /// (for tracing). Returns the cycle's attribution outcome.
  StepOutcome step(RouterState& router, std::uint64_t cycle = 0);

  /// Attach an execution tracer (may be nullptr to detach). The core
  /// records task starts/ends, instruction completions, and stalls.
  void set_tracer(Tracer* tracer, int tile_x, int tile_y) {
    tracer_ = tracer;
    tile_x_ = tile_x;
    tile_y_ = tile_y;
  }

  /// Fabric coordinates, stamped onto injected flits as provenance for the
  /// critical-path analyzer. Set once by Fabric::configure_tile (set_tracer
  /// also sets them, for cores driven without a fabric).
  void set_position(int tile_x, int tile_y) {
    tile_x_ = tile_x;
    tile_y_ = tile_y;
  }

  /// Attach a flight recorder (nullptr detaches; docs/POSTMORTEM.md). The
  /// core records task state transitions, FIFO high-water advances, and
  /// phase/iteration marks into the recorder's per-tile ring. Recording is
  /// observe-only: attachment cannot change simulated behaviour.
  void set_flight_recorder(telemetry::FlightRecorder* rec) {
    flightrec_ = rec;
  }

  /// Sticky program phase (last SetPhase marker executed; Control before
  /// any marker) and iteration counter (MarkIteration steps seen) — the
  /// profiler's binning keys. Both reset with reset_control().
  [[nodiscard]] ProgPhase phase() const { return phase_; }
  [[nodiscard]] std::uint64_t iteration() const { return iteration_; }

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] bool quiescent() const;

  /// The parked equivalent of one step() on a quiescent core, for the
  /// turbo backend (docs/BACKENDS.md). A quiescent core can never wake
  /// itself: the scheduler finds no ready task (deliveries only fill ramp
  /// queues, they never activate tasks) and no slot is occupied, so a full
  /// step() would be exactly `++idle_cycles`. This method IS that step —
  /// it must stay in lockstep with the Idle arm of step(), which the
  /// backend conformance suite enforces bit for bit.
  void step_parked() { ++stats_.idle_cycles; }
  [[nodiscard]] const CoreStats& stats() const { return stats_; }
  [[nodiscard]] const TileProgram& program() const { return prog_; }

  /// Task the scheduler is currently executing (kNoTask between tasks) and
  /// whether it is parked on a Sync step — post-mortem introspection.
  [[nodiscard]] TaskId current_task() const { return current_task_; }
  [[nodiscard]] bool waiting_sync() const { return waiting_sync_; }

  /// What every occupied thread slot is blocked on right now (empty when
  /// nothing is stalled). Read-only; feeds the post-mortem wait-for graph.
  [[nodiscard]] std::vector<CoreWait> waits() const;

  // --- host access for loading/unloading data (the host interface of a
  // real system; not part of the simulated cycle count) ---
  void host_write_f16(int addr, fp16_t v) { memory_[static_cast<std::size_t>(addr)] = v.bits(); }
  [[nodiscard]] fp16_t host_read_f16(int addr) const {
    return fp16_t::from_bits(memory_[static_cast<std::size_t>(addr)]);
  }
  void host_write_f32(int addr, float v);
  [[nodiscard]] float host_read_f32(int addr) const;
  void host_write_scalar(int reg, float v) { scalars_[static_cast<std::size_t>(reg)] = v; }
  [[nodiscard]] float host_read_scalar(int reg) const { return scalars_[static_cast<std::size_t>(reg)]; }

  /// Reset all descriptor positions, task states, and stats so the same
  /// program can run again (the solver re-invokes SpMV every iteration).
  void reset_control();

  /// One-line human-readable execution state (current task/step, occupied
  /// thread slots, nonempty ramp queues) — for debugging stalled fabrics.
  [[nodiscard]] std::string debug_state() const;

private:
  struct RunningInstr {
    Instr instr;
    bool from_sync = false; ///< completing unblocks the owning task's steps
  };

  // memory access
  [[nodiscard]] fp16_t read_f16(int addr) const {
    return fp16_t::from_bits(memory_[static_cast<std::size_t>(addr)]);
  }
  void write_f16(int addr, fp16_t v) { memory_[static_cast<std::size_t>(addr)] = v.bits(); }
  [[nodiscard]] float read_f32(int addr) const;
  void write_f32(int addr, float v);

  [[nodiscard]] double read_elem(const TensorDesc& t, int i) const;
  void write_elem(const TensorDesc& t, int i, double v);

  void fire(TaskId task, TrigAction act);
  void complete_instr(int slot, RouterState& router);
  /// Advance instruction in `slot` by as many elements as this cycle
  /// allows. Returns true if any forward progress was made.
  bool advance(int slot, RouterState& router);
  bool inject(RouterState& router, Color color, std::uint32_t payload,
              bool wide);
  void run_scheduler();

  TileProgram prog_;
  TileProgram pristine_; ///< initial descriptor/task state, for reset_control
  const CS1Params* arch_;
  SimParams sim_;
  std::vector<std::uint16_t> memory_;
  std::vector<float> scalars_;
  std::vector<std::deque<std::uint32_t>> ramp_queues_;

  // thread slots; index arch_->num_thread_slots is the main/sync slot
  std::vector<std::optional<RunningInstr>> slots_;
  int rr_slot_ = 0;

  // task execution state
  TaskId current_task_ = kNoTask;
  std::size_t current_step_ = 0;
  bool waiting_sync_ = false;

  bool done_ = false;
  CoreStats stats_;

  // profiler annotations (docs/PROFILING.md)
  ProgPhase phase_ = ProgPhase::Control;
  std::uint64_t iteration_ = 0;

  // tracing
  Tracer* tracer_ = nullptr;
  int tile_x_ = 0;
  int tile_y_ = 0;
  std::uint64_t current_cycle_ = 0;

  // black-box flight recorder (docs/POSTMORTEM.md); observe-only
  telemetry::FlightRecorder* flightrec_ = nullptr;
};

} // namespace wss::wse
