#pragma once

// Static routing configuration. As on the CS-1, routing is configured
// offline ("as part of compilation"): each tile's router carries one rule
// per color saying which mesh links a word of that color is forwarded to
// and which local (ramp) channels receive a copy. Fanout to multiple
// destinations happens in the router, not in software.

#include <array>
#include <cstdint>
#include <vector>

#include "wse/types.hpp"

namespace wss::wse {

/// Per-color routing rule at one tile.
struct RouteRule {
  /// Bitmask over Dir::North..Dir::West of mesh links to forward to.
  std::uint8_t forward_mask = 0;
  /// Local channels (ramp RX queues) that receive a copy. A word may be
  /// delivered to more than one local channel — this is how the SpMV
  /// program consumes the looped-back iterate twice (z-plus term and main
  /// diagonal) without spending extra fabric bandwidth.
  std::vector<int> deliver_channels;

  [[nodiscard]] bool forwards_to(Dir d) const {
    return (forward_mask & (1u << static_cast<int>(d))) != 0;
  }
  void add_forward(Dir d) {
    forward_mask |= static_cast<std::uint8_t>(1u << static_cast<int>(d));
  }
};

/// All rules for one tile, indexed by color.
struct RoutingTable {
  std::array<RouteRule, kNumColors> rules;

  [[nodiscard]] const RouteRule& rule(Color c) const { return rules[c]; }
  RouteRule& rule(Color c) { return rules[c]; }
};

} // namespace wss::wse
