#include "wse/trace.hpp"

#include <sstream>

namespace wss::wse {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::TaskStart: return "task-start";
    case TraceEventKind::TaskEnd: return "task-end";
    case TraceEventKind::InstrComplete: return "instr-done";
    case TraceEventKind::Stall: return "stall";
    case TraceEventKind::Fault: return "fault";
  }
  return "?";
}

std::string Tracer::render(std::size_t max_lines) const {
  std::ostringstream out;
  std::size_t lines = 0;
  for (const TraceEvent& e : events_) {
    if (lines++ >= max_lines) {
      out << "... (" << events_.size() - max_lines << " more events)\n";
      break;
    }
    out << "cycle " << e.cycle << " (" << e.tile_x << "," << e.tile_y
        << ") " << to_string(e.kind) << " " << e.label << "\n";
  }
  if (dropped_ > 0) {
    out << "[" << dropped_ << " events dropped at capacity]\n";
  }
  return out.str();
}

std::size_t Tracer::count(TraceEventKind kind) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

} // namespace wss::wse
