#pragma once

// A persistent barrier-style thread pool for the fabric simulator. The
// fabric's three per-cycle phases (route, core, link) are each data-parallel
// over tiles once cross-tile mutation is confined to uniquely-owned queues,
// so Fabric::step() shards the tile grid into contiguous row bands and runs
// each phase as one pool dispatch: every band executes the same phase
// function, and run() returns only after all bands finished (a barrier).
// Workers are spawned once and reused across cycles — a simulated run is
// millions of dispatches, so thread creation must not be on the per-cycle
// path.
//
// Determinism contract: the pool adds no ordering of its own. Each band
// touches disjoint state within a phase (see fabric.cpp), and any global
// counters are accumulated per band and reduced in band order at the
// barrier, so a parallel run is bit-identical to a serial one for any
// thread count (asserted by tests/wse/parallel_conformance_test.cpp).

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wss::wse {

/// Resolve the simulator worker-thread count: `requested` when positive,
/// else the WSS_SIM_THREADS environment variable when set to a positive
/// integer, else 1 (serial). Values are clamped to [1, 256].
int resolve_sim_threads(int requested);

class SimThreadPool {
public:
  /// Spawns `threads - 1` workers; band 0 always runs on the caller.
  explicit SimThreadPool(int threads);
  ~SimThreadPool();
  SimThreadPool(const SimThreadPool&) = delete;
  SimThreadPool& operator=(const SimThreadPool&) = delete;

  /// Invoke `fn(band)` for every band in [0, threads()), band 0 on the
  /// calling thread, and block until all bands complete. `fn` must be safe
  /// to call concurrently for distinct bands. If any invocation throws,
  /// the first exception (in band order) is rethrown here after the
  /// barrier, so the fabric is never left mid-phase.
  void run(const std::function<void(int)>& fn);

  [[nodiscard]] int threads() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Physical concurrency of this host (>= 1); what speedup is bounded by.
  [[nodiscard]] static unsigned hardware_threads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1u : n;
  }

private:
  void worker(int band);

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_; ///< one slot per band
  std::vector<std::thread> workers_;
};

} // namespace wss::wse
