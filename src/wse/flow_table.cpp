#include "wse/flow_table.hpp"

namespace wss::wse {

FlowTable spmv_flow_table() {
  FlowTable t;
  for (int c = 0; c < kTessellationColors; ++c) {
    const Color color = static_cast<Color>(c);
    t.bind(Dir::East, color, "spmv.x");
    t.bind(Dir::West, color, "spmv.x");
    t.bind(Dir::North, color, "spmv.y");
    t.bind(Dir::South, color, "spmv.y");
  }
  return t;
}

void add_allreduce_flows(FlowTable& table, Color base,
                         const std::string& suffix) {
  const std::string reduce = "allreduce" + suffix + ".reduce";
  const std::string bcast = "allreduce" + suffix + ".bcast";
  const Color c_row = base;
  const Color c_col = static_cast<Color>(base + 1);
  const Color c_quad = static_cast<Color>(base + 2);
  const Color c_final = static_cast<Color>(base + 3);
  const Color c_bcast = static_cast<Color>(base + 4);
  // Row reduction streams east/west into the center columns; column
  // reduction streams south/north along them; the 4:1 quad hop goes east;
  // the final hop goes south down the root column.
  table.bind(Dir::East, c_row, reduce);
  table.bind(Dir::West, c_row, reduce);
  table.bind(Dir::South, c_col, reduce);
  table.bind(Dir::North, c_col, reduce);
  table.bind(Dir::East, c_quad, reduce);
  table.bind(Dir::South, c_final, reduce);
  // The broadcast fans out from the root in all four directions.
  for (const Dir d : kMeshDirs) table.bind(d, c_bcast, bcast);
}

FlowTable bicgstab_flow_table() {
  FlowTable t = spmv_flow_table();
  add_allreduce_flows(t, kAllReduceBase, "");
  add_allreduce_flows(t, kAllReduceBase2, "2");
  return t;
}

FlowTable stencilfe_flow_table(bool periodic) {
  FlowTable t;
  // Parity-split axis legs: each direction owns two colors (even/odd
  // sender coordinate) and each color travels exactly one direction.
  for (int parity = 0; parity < 2; ++parity) {
    t.bind(Dir::East, static_cast<Color>(parity), "halo.E");
    t.bind(Dir::West, static_cast<Color>(2 + parity), "halo.W");
    t.bind(Dir::South, static_cast<Color>(4 + parity), "halo.S");
    t.bind(Dir::North, static_cast<Color>(6 + parity), "halo.N");
  }
  if (periodic) {
    t.bind(Dir::East, kStencilWrapEast, "wrap.E");
    t.bind(Dir::West, kStencilWrapWest, "wrap.W");
    t.bind(Dir::South, kStencilWrapSouth, "wrap.S");
    t.bind(Dir::North, kStencilWrapNorth, "wrap.N");
  }
  return t;
}

} // namespace wss::wse
