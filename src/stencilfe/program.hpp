#pragma once

// Compiles a TransitionFn into a per-tile fabric program (one cell per
// tile; meshes larger than the fabric are ROADMAP item 3). Tile memory
// holds the cell's own fields embedded in a 3x3 ghost frame:
//
//   rowC: [bufW | own | bufE]   (3F halfwords — the "row packet")
//   rowN: [nw   | n   | ne ]    (3F, received from the north neighbor)
//   rowS: [sw   | s   | se ]    (3F, received from the south neighbor)
//   zero: F halfwords, never written after load (fp16 +0)
//   lin:  F accumulators, next: F committed outputs
//
// One generation is a straight-line sequence of Sync steps: exchange west/
// east own-fields along rows (parity colors, wrap colors when periodic),
// then ship the assembled row packet north/south — corner ghosts ride the
// packet, so diagonal neighbors arrive in two one-hop legs exactly like
// the paper's spmv2d halo. Every send completes before any receive
// starts within a round, and each round's longest message (3F <= 6 words)
// fits the receiver's ramp queue (depth 8), so the exchange is
// deadlock-free by construction. The compute stage folds each Term with
// one fp16 FMAC in declaration order; golden_step() mirrors the same
// order bit-for-bit.

#include "stencilfe/transition.hpp"
#include "wse/program.hpp"
#include "wse/routing.hpp"

namespace wss::stencilfe {

/// Halfword offsets of the per-tile memory regions for a given field
/// count. Shared by the program builder, the executor's host loads/reads,
/// and the tests that peek at tile memory.
struct CellLayout {
  int fields = 1;
  int row_c = 0;    ///< [bufW|own|bufE], own at row_c + fields
  int row_n = 0;
  int row_s = 0;
  int zero = 0;
  int lin = 0;
  int next = 0;
  int used_halfwords = 0;

  [[nodiscard]] int own() const { return row_c + fields; }
  /// Address of neighbor (dx, dy) field f as the compute stage reads it.
  [[nodiscard]] int neighbor(int dx, int dy, int f) const {
    const int row = dy < 0 ? row_n : (dy > 0 ? row_s : row_c);
    return row + (dx + 1) * fields + f;
  }
};

[[nodiscard]] CellLayout cell_layout(const TransitionFn& fn);

/// The per-tile program for cell (x, y) of an nx*ny grid. One generation
/// per activation: the executor re-arms it with Fabric::reset_control().
[[nodiscard]] wse::TileProgram build_cell_program(const TransitionFn& fn,
                                                  int x, int y, int nx,
                                                  int ny);

/// Routing for the same tile (wraps wse::compile_stencilfe_routes).
[[nodiscard]] wse::RoutingTable build_cell_routes(const TransitionFn& fn,
                                                  int x, int y, int nx,
                                                  int ny);

} // namespace wss::stencilfe
