#pragma once

// StencilExecutor: owns a fabric sized to the grid (one cell per tile),
// loads host state, steps generations, and reads results back. Iteration
// is host-driven: each generation runs the straight-line cell program to
// AllDone, then Fabric::reset_control() re-arms every tile for the next
// one (descriptors restored, memory and committed state kept). The
// executor works on either execution backend and at any WSS_SIM_THREADS —
// the conformance suite holds all combinations bit-identical.

#include <cstdint>
#include <vector>

#include "stencilfe/program.hpp"
#include "stencilfe/transition.hpp"
#include "wse/fabric.hpp"
#include "wse/flow_table.hpp"

namespace wss::stencilfe {

class StencilExecutor {
public:
  /// Grid must fit the fabric one-to-one (nx*ny tiles). Throws on an
  /// invalid transition spec or an unmappable grid.
  StencilExecutor(TransitionFn fn, int nx, int ny,
                  const wse::CS1Params& arch, wse::SimParams sim = {});

  /// Load a full state vector: cell (x, y) field f at (y*nx+x)*fields+f.
  /// Also zeroes the ghost frame and scratch regions, so a Dirichlet
  /// boundary reads fp16 +0 from the first generation on.
  void load(const std::vector<fp16_t>& state);

  /// Run `generations` generations; returns the last generation's stop
  /// info. Throws std::runtime_error if a generation fails to reach
  /// AllDone (deadlock/watchdog — the stop report is in the message).
  wse::StopInfo step(int generations = 1);

  [[nodiscard]] std::vector<fp16_t> read_state() const;

  [[nodiscard]] const TransitionFn& transition() const { return fn_; }
  [[nodiscard]] const CellLayout& layout() const { return layout_; }
  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  /// Cycles consumed by the most recent generation.
  [[nodiscard]] std::uint64_t last_generation_cycles() const {
    return last_cycles_;
  }
  [[nodiscard]] wse::Fabric& fabric() { return fabric_; }
  [[nodiscard]] const wse::Fabric& fabric() const { return fabric_; }

  /// The flow declaration matching this program's compiled routes (wrap
  /// lanes included only for a periodic boundary) — hand it to a
  /// telemetry::NetMonitor before Fabric::set_net_monitor.
  [[nodiscard]] wse::FlowTable flow_table() const {
    return wse::stencilfe_flow_table(fn_.boundary == BoundaryPolicy::Periodic);
  }

private:
  TransitionFn fn_;
  CellLayout layout_;
  int nx_;
  int ny_;
  wse::Fabric fabric_;
  std::uint64_t last_cycles_ = 0;
  std::uint64_t budget_ = 0;
  bool need_reset_ = false;
};

} // namespace wss::stencilfe
