#include "stencilfe/workloads.hpp"

#include "common/rng.hpp"
#include "stencil/stencil9.hpp"

namespace wss::stencilfe {

namespace {
constexpr std::array<std::array<int, 2>, 4> kAxisOffsets = {{
    {0, -1}, {-1, 0}, {1, 0}, {0, 1},
}};
} // namespace

TransitionFn heat_fn(double alpha, BoundaryPolicy boundary) {
  TransitionFn fn;
  fn.name = "heat";
  fn.fields = 1;
  fn.boundary = boundary;
  fn.terms.push_back({0, 0, 0, 0, fp16_t(1.0 - 4.0 * alpha)});
  for (const auto& o : kAxisOffsets) {
    fn.terms.push_back({0, o[0], o[1], 0, fp16_t(alpha)});
  }
  return fn;
}

TransitionFn wave_fn(double c2, BoundaryPolicy boundary) {
  TransitionFn fn;
  fn.name = "wave";
  fn.fields = 2;
  fn.boundary = boundary;
  // u' = (2-4c2)*u + c2*(n+w+e+s) - u_prev
  fn.terms.push_back({0, 0, 0, 0, fp16_t(2.0 - 4.0 * c2)});
  for (const auto& o : kAxisOffsets) {
    fn.terms.push_back({0, o[0], o[1], 0, fp16_t(c2)});
  }
  fn.terms.push_back({0, 0, 0, 1, fp16_t(-1.0)});
  // u_prev' = u
  fn.terms.push_back({1, 0, 0, 0, fp16_t(1.0)});
  return fn;
}

TransitionFn life_fn(BoundaryPolicy boundary) {
  TransitionFn fn;
  fn.name = "life";
  fn.fields = 1;
  fn.boundary = boundary;
  fn.life_rule = true;
  for (const auto& o : kStencil9Offsets) {
    if (o[0] == 0 && o[1] == 0) continue;
    fn.terms.push_back({0, o[0], o[1], 0, fp16_t(1.0)});
  }
  return fn;
}

TransitionFn stencil9_fn() {
  TransitionFn fn;
  fn.name = "stencil9";
  fn.fields = 1;
  fn.boundary = BoundaryPolicy::DirichletZero;
  for (const auto& o : kStencil9Offsets) {
    fn.terms.push_back({0, o[0], o[1], 0, fp16_t(1.0)});
  }
  return fn;
}

std::vector<fp16_t> random_state(const TransitionFn& fn, int nx, int ny,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<fp16_t> state(static_cast<std::size_t>(nx) *
                            static_cast<std::size_t>(ny) *
                            static_cast<std::size_t>(fn.fields));
  for (auto& v : state) v = fp16_t(rng.uniform(-1.0, 1.0));
  return state;
}

std::vector<fp16_t> random_life_state(int nx, int ny, std::uint64_t seed,
                                      double density) {
  Rng rng(seed);
  std::vector<fp16_t> state(static_cast<std::size_t>(nx) *
                            static_cast<std::size_t>(ny));
  for (auto& v : state) v = fp16_t(rng.uniform(0.0, 1.0) < density ? 1.0 : 0.0);
  return state;
}

} // namespace wss::stencilfe
