#pragma once

// The shipped transition functions: the three non-paper workloads
// (heat/hotspot diffusion, 2D wave propagation, Conway's Game of Life)
// plus the stencil9 halo-exchange anchor that ties the front-end to the
// proven backend-conformance program. Each is a plain TransitionFn value;
// the seeded state generators keep benches and tests reproducible.

#include <cstdint>
#include <vector>

#include "stencilfe/transition.hpp"

namespace wss::stencilfe {

/// Explicit heat diffusion (hotspot): u' = (1-4a)*u + a*(n+s+w+e).
[[nodiscard]] TransitionFn heat_fn(
    double alpha = 0.125,
    BoundaryPolicy boundary = BoundaryPolicy::DirichletZero);

/// 2D wave equation, leapfrog in two fields (u, u_prev):
///   u'      = (2-4c2)*u + c2*(n+s+w+e) - u_prev
///   u_prev' = u
[[nodiscard]] TransitionFn wave_fn(
    double c2 = 0.25, BoundaryPolicy boundary = BoundaryPolicy::Reflective);

/// Conway's Game of Life on a torus: eight unit neighbor terms count the
/// live neighbors, then the LifeV pointwise rule decides the next state.
[[nodiscard]] TransitionFn life_fn(
    BoundaryPolicy boundary = BoundaryPolicy::Periodic);

/// The conformance anchor: the 9-point unit-coefficient neighborhood sum,
/// term order matching stencil::kStencil9Offsets, Dirichlet-zero — the
/// same computation as the hand-built backend-conformance stencil9
/// program and spmv9 on an all-ones Stencil9.
[[nodiscard]] TransitionFn stencil9_fn();

/// Seeded uniform(-1, 1) state for fn.fields fields on an nx*ny grid.
[[nodiscard]] std::vector<fp16_t> random_state(const TransitionFn& fn, int nx,
                                               int ny, std::uint64_t seed);

/// Seeded 0/1 life board with roughly `density` live cells.
[[nodiscard]] std::vector<fp16_t> random_life_state(int nx, int ny,
                                                    std::uint64_t seed,
                                                    double density = 0.35);

} // namespace wss::stencilfe
