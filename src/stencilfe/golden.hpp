#pragma once

// Host golden evaluator for the generic stencil front-end: computes one
// generation with exactly the arithmetic the compiled fabric program
// performs — same fp16 FMAC, same term order, same boundary reads — so
// fabric results can be asserted bit-for-bit against it (the conformance
// and property tests do exactly that).

#include <vector>

#include "common/fp16.hpp"
#include "stencilfe/transition.hpp"

namespace wss::stencilfe {

/// State vector layout: cell (x, y) field f lives at (y*nx + x)*fields + f.
[[nodiscard]] std::vector<fp16_t> golden_step(const TransitionFn& fn, int nx,
                                              int ny,
                                              const std::vector<fp16_t>& state);

/// Run `generations` golden steps.
[[nodiscard]] std::vector<fp16_t> golden_run(const TransitionFn& fn, int nx,
                                             int ny, std::vector<fp16_t> state,
                                             int generations);

} // namespace wss::stencilfe
