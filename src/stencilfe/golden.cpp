#include "stencilfe/golden.hpp"

namespace wss::stencilfe {

namespace {

/// Resolve a neighbor coordinate along one axis under the boundary policy.
/// Returns -1 for "reads as zero" (Dirichlet outside the domain).
int resolve_axis(int i, int n, BoundaryPolicy policy) {
  if (i >= 0 && i < n) return i;
  switch (policy) {
    case BoundaryPolicy::DirichletZero:
      return -1;
    case BoundaryPolicy::Periodic:
      return (i + n) % n;
    case BoundaryPolicy::Reflective:
      // The fabric mirrors by copying the edge cell's own value into the
      // missing ghost, so an out-of-range step reflects back onto the
      // cell that took it (i < 0 came from i == 0; i >= n from i == n-1).
      return i < 0 ? 0 : n - 1;
  }
  return -1;
}

} // namespace

std::vector<fp16_t> golden_step(const TransitionFn& fn, int nx, int ny,
                                const std::vector<fp16_t>& state) {
  validate(fn);
  const int fields = fn.fields;
  const auto at = [&](int x, int y, int f) {
    return state[static_cast<std::size_t>((y * nx + x) * fields + f)];
  };
  std::vector<fp16_t> next(state.size());
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      fp16_t lin[kMaxFields];
      for (int of = 0; of < fields; ++of) {
        // The fabric initializes each accumulator by copying a pristine
        // zero buffer (fp16 +0), then folds every term with one FMAC per
        // term in declaration order — mirror that exactly, including the
        // FMACs against ghost zeros, which are executed, not skipped.
        fp16_t acc(0.0);
        for (const Term& t : fn.terms) {
          if (t.out_field != of) continue;
          const int sx = resolve_axis(x + t.dx, nx, fn.boundary);
          const int sy = resolve_axis(y + t.dy, ny, fn.boundary);
          const fp16_t v = (sx < 0 || sy < 0) ? fp16_t(0.0) : at(sx, sy, t.in_field);
          acc = fmac(t.coeff, v, acc);
        }
        lin[of] = acc;
      }
      for (int of = 0; of < fields; ++of) {
        fp16_t out = lin[of];
        if (fn.life_rule && of == 0) {
          const double count = lin[0].to_double();
          const double alive = at(x, y, 0).to_double();
          out = fp16_t((count == 3.0 || (count == 2.0 && alive == 1.0)) ? 1.0
                                                                        : 0.0);
        }
        next[static_cast<std::size_t>((y * nx + x) * fields + of)] = out;
      }
    }
  }
  return next;
}

std::vector<fp16_t> golden_run(const TransitionFn& fn, int nx, int ny,
                               std::vector<fp16_t> state, int generations) {
  for (int g = 0; g < generations; ++g) {
    state = golden_step(fn, nx, ny, state);
  }
  return state;
}

} // namespace wss::stencilfe
