#include "stencilfe/program.hpp"

#include <stdexcept>

#include "wse/arch.hpp"
#include "wse/route_compiler.hpp"

namespace wss::stencilfe {

using wse::Color;
using wse::DType;
using wse::Instr;
using wse::kNoTask;
using wse::OpKind;
using wse::ProgPhase;
using wse::Task;
using wse::TaskStep;
using wse::TileProgram;
using wse::TrigAction;

CellLayout cell_layout(const TransitionFn& fn) {
  validate(fn);
  wse::MemAllocator mem(wse::CS1Params{}.tile_memory_bytes);
  CellLayout l;
  l.fields = fn.fields;
  l.row_c = mem.allocate(3 * fn.fields, DType::F16);
  l.row_n = mem.allocate(3 * fn.fields, DType::F16);
  l.row_s = mem.allocate(3 * fn.fields, DType::F16);
  l.zero = mem.allocate(fn.fields, DType::F16);
  l.lin = mem.allocate(fn.fields, DType::F16);
  l.next = mem.allocate(fn.fields, DType::F16);
  l.used_halfwords = mem.used_halfwords();
  return l;
}

TileProgram build_cell_program(const TransitionFn& fn, int x, int y, int nx,
                               int ny) {
  const CellLayout l = cell_layout(fn);
  const bool periodic = fn.boundary == BoundaryPolicy::Periodic;
  const bool reflective = fn.boundary == BoundaryPolicy::Reflective;
  if (periodic && (nx < 2 || ny < 2)) {
    throw std::invalid_argument("periodic boundary needs nx, ny >= 2");
  }
  const int f = fn.fields;

  TileProgram prog;
  prog.num_scalars = static_cast<int>(fn.terms.size());
  const auto tensor = [&](int base, int len) {
    return prog.add_tensor({base, len, 1, DType::F16, 0});
  };
  Task t{"stencilfe:" + fn.name, false, false, false, {}};
  const auto sync = [&](Instr in) {
    t.steps.push_back({TaskStep::Kind::Sync, -1, in, kNoTask});
  };
  const auto copy = [&](int dst_base, int src_base, int len) {
    Instr cp{};
    cp.op = OpKind::CopyV;
    cp.dst = tensor(dst_base, len);
    cp.src1 = tensor(src_base, len);
    sync(cp);
  };
  const auto send = [&](int src_base, int len, Color color) {
    Instr s{};
    s.op = OpKind::Send;
    s.src1 = tensor(src_base, len);
    s.fabric =
        prog.add_fabric({color, len, DType::F16, 0, kNoTask, TrigAction::None});
    sync(s);
  };
  const auto recv = [&](int dst_base, int len, int channel) {
    Instr r{};
    r.op = OpKind::RecvToMem;
    r.dst = tensor(dst_base, len);
    r.fabric = prog.add_fabric(
        {channel, len, DType::F16, 0, kNoTask, TrigAction::None});
    sync(r);
  };

  t.steps.push_back(wse::mark_iteration_step());
  t.steps.push_back(wse::set_phase_step(ProgPhase::SpMV)); // halo exchange

  // Reflective x-ghosts mirror the cell itself; they never travel.
  if (reflective && x == 0) copy(l.row_c, l.own(), f);
  if (reflective && x + 1 == nx) copy(l.row_c + 2 * f, l.own(), f);

  // Row round: own fields east/west (interior parity colors, wrap lanes
  // at the domain edge when periodic). All sends, then all receives.
  if (x + 1 < nx) send(l.own(), f, wse::stencilfe_send_east(x));
  if (x > 0) send(l.own(), f, wse::stencilfe_send_west(x));
  if (periodic && x == 0) send(l.own(), f, wse::kStencilWrapEast);
  if (periodic && x + 1 == nx) send(l.own(), f, wse::kStencilWrapWest);
  if (x > 0) recv(l.row_c, f, wse::stencilfe_send_east(x - 1));
  if (x + 1 < nx) recv(l.row_c + 2 * f, f, wse::stencilfe_send_west(x + 1));
  if (periodic && x == 0) recv(l.row_c, f, wse::kStencilWrapWest);
  if (periodic && x + 1 == nx)
    recv(l.row_c + 2 * f, f, wse::kStencilWrapEast);

  // Reflective y-ghosts mirror the now-complete row packet, which makes
  // the corner ghosts compose (a doubly-out-of-range corner reflects on
  // both axes automatically).
  if (reflective && y == 0) copy(l.row_n, l.row_c, 3 * f);
  if (reflective && y + 1 == ny) copy(l.row_s, l.row_c, 3 * f);

  // Column round: the assembled row packet north/south. Corner neighbors
  // ride the packet — two one-hop legs, the paper's spmv2d shape.
  if (y + 1 < ny) send(l.row_c, 3 * f, wse::stencilfe_send_south(y));
  if (y > 0) send(l.row_c, 3 * f, wse::stencilfe_send_north(y));
  if (periodic && y == 0) send(l.row_c, 3 * f, wse::kStencilWrapSouth);
  if (periodic && y + 1 == ny) send(l.row_c, 3 * f, wse::kStencilWrapNorth);
  if (y > 0) recv(l.row_n, 3 * f, wse::stencilfe_send_south(y - 1));
  if (y + 1 < ny) recv(l.row_s, 3 * f, wse::stencilfe_send_north(y + 1));
  if (periodic && y == 0) recv(l.row_n, 3 * f, wse::kStencilWrapNorth);
  if (periodic && y + 1 == ny)
    recv(l.row_s, 3 * f, wse::kStencilWrapSouth);

  t.steps.push_back(wse::set_phase_step(ProgPhase::Axpy)); // compute

  // One scalar register per term, re-seeded every generation (SetScalar
  // is control plumbing; the value round-trips fp16-exactly).
  for (std::size_t i = 0; i < fn.terms.size(); ++i) {
    Instr s{};
    s.op = OpKind::SetScalar;
    s.scalar = static_cast<int>(i);
    s.imm = fn.terms[i].coeff.to_double();
    sync(s);
  }

  // lin = 0, then one FMAC per term in declaration order.
  copy(l.lin, l.zero, f);
  for (int of = 0; of < f; ++of) {
    for (std::size_t i = 0; i < fn.terms.size(); ++i) {
      const Term& term = fn.terms[i];
      if (term.out_field != of) continue;
      Instr a{};
      a.op = OpKind::AxpyV;
      a.dst = tensor(l.lin + of, 1);
      a.src1 = tensor(l.neighbor(term.dx, term.dy, term.in_field), 1);
      a.scalar = static_cast<int>(i);
      sync(a);
    }
  }
  if (fn.life_rule) {
    Instr lf{};
    lf.op = OpKind::LifeV;
    lf.dst = tensor(l.next, 1);
    lf.src1 = tensor(l.lin, 1);
    lf.src2 = tensor(l.own(), 1);
    sync(lf);
  } else {
    copy(l.next, l.lin, f);
  }

  t.steps.push_back(wse::set_phase_step(ProgPhase::Control)); // commit
  copy(l.own(), l.next, f);
  t.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  prog.memory_halfwords = l.used_halfwords;
  return prog;
}

wse::RoutingTable build_cell_routes(const TransitionFn& fn, int x, int y,
                                    int nx, int ny) {
  return wse::compile_stencilfe_routes(
      x, y, nx, ny, fn.boundary == BoundaryPolicy::Periodic);
}

} // namespace wss::stencilfe
