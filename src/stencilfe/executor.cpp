#include "stencilfe/executor.hpp"

#include <stdexcept>
#include <string>

namespace wss::stencilfe {

StencilExecutor::StencilExecutor(TransitionFn fn, int nx, int ny,
                                 const wse::CS1Params& arch,
                                 wse::SimParams sim)
    : fn_(std::move(fn)),
      layout_(cell_layout(fn_)),
      nx_(nx),
      ny_(ny),
      fabric_(nx, ny, arch, sim) {
  if (nx < 1 || ny < 1) {
    throw std::invalid_argument("stencilfe grid must be at least 1x1");
  }
  for (int y = 0; y < ny_; ++y) {
    for (int x = 0; x < nx_; ++x) {
      fabric_.configure_tile(x, y, build_cell_program(fn_, x, y, nx_, ny_),
                             build_cell_routes(fn_, x, y, nx_, ny_));
    }
  }
  // Exchange legs are one hop except the periodic wrap lanes, which
  // traverse a full row/column; the compute stage is one FMAC per term.
  // A generation is therefore O(nx + ny + terms); this budget is an order
  // of magnitude above it so only a genuine deadlock can exhaust it.
  budget_ = 20000 + 200 * static_cast<std::uint64_t>(nx_ + ny_) +
            100 * static_cast<std::uint64_t>(fn_.terms.size());
}

void StencilExecutor::load(const std::vector<fp16_t>& state) {
  const std::size_t want =
      static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) *
      static_cast<std::size_t>(fn_.fields);
  if (state.size() != want) {
    throw std::invalid_argument("stencilfe state size mismatch: got " +
                                std::to_string(state.size()) + ", want " +
                                std::to_string(want));
  }
  for (int y = 0; y < ny_; ++y) {
    for (int x = 0; x < nx_; ++x) {
      auto& core = fabric_.core(x, y);
      for (int a = 0; a < layout_.used_halfwords; ++a) {
        core.host_write_f16(a, fp16_t(0.0));
      }
      for (int f = 0; f < fn_.fields; ++f) {
        core.host_write_f16(
            layout_.own() + f,
            state[static_cast<std::size_t>((y * nx_ + x) * fn_.fields + f)]);
      }
    }
  }
}

wse::StopInfo StencilExecutor::step(int generations) {
  wse::StopInfo stop;
  for (int g = 0; g < generations; ++g) {
    if (need_reset_) fabric_.reset_control();
    need_reset_ = true;
    stop = fabric_.run(budget_);
    last_cycles_ = stop.cycles;
    if (stop.reason != wse::StopInfo::Reason::AllDone) {
      throw std::runtime_error(
          "stencilfe generation did not complete: " +
          std::string(wse::StopInfo::to_string(stop.reason)) +
          (stop.report.empty() ? "" : "\n" + stop.report));
    }
  }
  return stop;
}

std::vector<fp16_t> StencilExecutor::read_state() const {
  std::vector<fp16_t> out(static_cast<std::size_t>(nx_) *
                          static_cast<std::size_t>(ny_) *
                          static_cast<std::size_t>(fn_.fields));
  for (int y = 0; y < ny_; ++y) {
    for (int x = 0; x < nx_; ++x) {
      for (int f = 0; f < fn_.fields; ++f) {
        out[static_cast<std::size_t>((y * nx_ + x) * fn_.fields + f)] =
            fabric_.core(x, y).host_read_f16(layout_.own() + f);
      }
    }
  }
  return out;
}

} // namespace wss::stencilfe
