#pragma once

// Generic stencil front-end (ROADMAP item 2, docs/STENCILFE.md): a
// workload is a *transition function* — a declarative spec of how one
// cell's next state is computed from its 3x3 neighborhood — plus a grid,
// instead of a bespoke `*_program.cpp`. The spec is compiled onto the
// fabric by `build_cell_program()` (program.hpp) + the halo-exchange
// routes in `wse/route_compiler.hpp`, and mirrored bit-for-bit on the
// host by `golden_step()` (golden.hpp). The shape follows StencilStream's
// TransitionFunction/StencilUpdate split: the user supplies the local
// rule, the front-end supplies the exchange, boundary handling, and
// execution.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/fp16.hpp"

namespace wss::stencilfe {

/// What a cell sees beyond the domain edge.
enum class BoundaryPolicy : std::uint8_t {
  DirichletZero, ///< out-of-domain neighbors read as fp16 +0
  Periodic,      ///< the domain wraps as a torus (needs nx,ny >= 2)
  Reflective,    ///< out-of-domain reads mirror back to the edge cell
};

[[nodiscard]] constexpr const char* to_string(BoundaryPolicy p) {
  switch (p) {
    case BoundaryPolicy::DirichletZero: return "dirichlet-zero";
    case BoundaryPolicy::Periodic: return "periodic";
    case BoundaryPolicy::Reflective: return "reflective";
  }
  return "?";
}

/// One linear term of the update: out_field += coeff * in_field(x+dx, y+dy).
/// Offsets are restricted to the 3x3 neighborhood (|dx|,|dy| <= 1) — the
/// halo exchange ships exactly one ring.
struct Term {
  int out_field = 0;
  int dx = 0;
  int dy = 0;
  int in_field = 0;
  fp16_t coeff{1.0};
};

/// A cell's fp16 word count. Two fields cover every shipped workload
/// (wave propagation needs state + previous state) while keeping the
/// exchanged row packet within the ramp-queue absorption bound that makes
/// the sequential exchange deadlock-free by construction (program.hpp).
inline constexpr int kMaxFields = 2;

/// User-defined transition function: per-cell fields, the linear
/// neighborhood terms evaluated in declaration order with fp16 FMAC
/// rounding, an optional pointwise Conway-rule stage, and the boundary
/// policy. Everything is a value — two TransitionFns with equal contents
/// compile to identical fabric programs.
struct TransitionFn {
  std::string name;
  int fields = 1;
  std::vector<Term> terms;
  BoundaryPolicy boundary = BoundaryPolicy::DirichletZero;
  /// After the linear stage, field 0 becomes the Conway life rule applied
  /// to (count = linear result, alive = current field 0).
  bool life_rule = false;
};

/// Throws std::invalid_argument on a spec the compiler cannot map.
inline void validate(const TransitionFn& fn) {
  if (fn.fields < 1 || fn.fields > kMaxFields) {
    throw std::invalid_argument("transition '" + fn.name + "': fields must be 1.." +
                                std::to_string(kMaxFields));
  }
  if (fn.terms.empty()) {
    throw std::invalid_argument("transition '" + fn.name + "': no terms");
  }
  for (const Term& t : fn.terms) {
    if (t.dx < -1 || t.dx > 1 || t.dy < -1 || t.dy > 1) {
      throw std::invalid_argument("transition '" + fn.name +
                                  "': offsets must satisfy |dx|,|dy| <= 1");
    }
    if (t.in_field < 0 || t.in_field >= fn.fields || t.out_field < 0 ||
        t.out_field >= fn.fields) {
      throw std::invalid_argument("transition '" + fn.name +
                                  "': field index out of range");
    }
  }
  if (fn.life_rule && fn.fields != 1) {
    throw std::invalid_argument("transition '" + fn.name +
                                "': life_rule requires exactly one field");
  }
}

} // namespace wss::stencilfe
