#include "common/fp16.hpp"

#include <bit>
#include <cmath>
#include <ostream>

namespace wss {
namespace detail {

std::uint16_t fp16_bits_from_double(double value) noexcept {
  const std::uint64_t dbits = std::bit_cast<std::uint64_t>(value);
  const std::uint16_t sign = static_cast<std::uint16_t>((dbits >> 48) & 0x8000u);
  const int dexp = static_cast<int>((dbits >> 52) & 0x7FF);
  const std::uint64_t dmant = dbits & 0x000FFFFFFFFFFFFFull;

  if (dexp == 0x7FF) {
    if (dmant != 0) {
      return static_cast<std::uint16_t>(sign | 0x7E00u); // quiet NaN
    }
    return static_cast<std::uint16_t>(sign | 0x7C00u); // infinity
  }

  // Unbiased exponent of the double (treat subnormal doubles as zero for
  // binary16 purposes: their magnitude is below 2^-1022, far under the
  // binary16 subnormal floor of 2^-24).
  if (dexp == 0) {
    return sign;
  }
  const int e = dexp - 1023;

  if (e >= 16) {
    // Overflows binary16 (max finite 65504 has e == 15). Values in
    // [65504 + 16, 2^16) also round to infinity; catch them below via the
    // mantissa path, so only e >= 16 short-circuits here.
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  // 53-bit significand of |value|, implicit leading one made explicit.
  const std::uint64_t sig = (1ull << 52) | dmant;

  if (e >= -14) {
    // Normal binary16 range (possibly rounding up into infinity).
    // Keep 11 significand bits; 42 bits fall away.
    const std::uint64_t keep = sig >> 42;
    const std::uint64_t rem = sig & ((1ull << 42) - 1);
    const std::uint64_t halfway = 1ull << 41;
    std::uint64_t rounded = keep;
    if (rem > halfway || (rem == halfway && (keep & 1))) {
      ++rounded;
    }
    int he = e;
    if (rounded == (1ull << 11)) { // carry out of the significand
      rounded >>= 1;
      ++he;
    }
    if (he >= 16) {
      return static_cast<std::uint16_t>(sign | 0x7C00u);
    }
    const std::uint16_t hexp = static_cast<std::uint16_t>(he + 15);
    const std::uint16_t hman = static_cast<std::uint16_t>(rounded & 0x3FFu);
    return static_cast<std::uint16_t>(sign | (hexp << 10) | hman);
  }

  // Subnormal binary16 (or underflow to zero). The value is
  // sig * 2^(e-52); binary16 subnormals are k * 2^-24, k in [0, 2^10).
  // shift = number of significand bits dropped to land on 2^-24 grid.
  const int shift = 42 + (-14 - e);
  if (shift >= 64) {
    return sign; // far below denorm_min/2: rounds to zero
  }
  const std::uint64_t keep = sig >> shift;
  const std::uint64_t rem = sig & ((1ull << shift) - 1);
  const std::uint64_t halfway = 1ull << (shift - 1);
  std::uint64_t rounded = keep;
  if (rem > halfway || (rem == halfway && (keep & 1))) {
    ++rounded;
  }
  if (rounded >= (1ull << 10)) {
    // Rounded up into the smallest normal.
    return static_cast<std::uint16_t>(sign | 0x0400u);
  }
  return static_cast<std::uint16_t>(sign | static_cast<std::uint16_t>(rounded));
}

double double_from_fp16_bits(std::uint16_t bits) noexcept {
  const int sign = (bits & 0x8000u) ? -1 : 1;
  const int hexp = (bits >> 10) & 0x1F;
  const int hman = bits & 0x3FF;

  if (hexp == 0x1F) {
    if (hman != 0) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return sign * std::numeric_limits<double>::infinity();
  }
  if (hexp == 0) {
    return sign * std::ldexp(static_cast<double>(hman), -24);
  }
  return sign * std::ldexp(static_cast<double>(1024 + hman), hexp - 25);
}

} // namespace detail

fp16_t sqrt(fp16_t x) noexcept { return fp16_t(std::sqrt(x.to_double())); }

fp16_t abs(fp16_t x) noexcept {
  return fp16_t::from_bits(static_cast<std::uint16_t>(x.bits() & 0x7FFFu));
}

std::uint32_t fp16_ulp_distance(fp16_t a, fp16_t b) noexcept {
  if (a.is_nan() || b.is_nan()) {
    return 0xFFFFFFFFu;
  }
  // Map the sign-magnitude bit patterns onto a monotone integer line.
  auto order = [](std::uint16_t bits) -> std::int32_t {
    const std::int32_t mag = bits & 0x7FFF;
    return (bits & 0x8000u) ? -mag : mag;
  };
  const std::int32_t oa = order(a.bits());
  const std::int32_t ob = order(b.bits());
  return static_cast<std::uint32_t>(oa > ob ? oa - ob : ob - oa);
}

std::ostream& operator<<(std::ostream& os, fp16_t h) {
  return os << h.to_double();
}

} // namespace wss
