#pragma once

// Precision policies describing the arithmetic modes studied in the paper:
// pure fp16, the paper's mixed mode (fp16 storage and arithmetic, fp16
// multiply / fp32 accumulate inner products, fp32 AllReduce), fp32, and
// fp64 (the cluster baseline). Solvers are templated on a policy so one
// implementation produces all the Fig. 9 curves.

#include <cstddef>
#include <string_view>

#include "common/fp16.hpp"

namespace wss {

/// Generic conversions used by templated numerical code.
inline double to_double(fp16_t v) noexcept { return v.to_double(); }
inline double to_double(float v) noexcept { return static_cast<double>(v); }
inline double to_double(double v) noexcept { return v; }

template <typename T>
T from_double(double v) noexcept {
  return static_cast<T>(v);
}
template <>
inline fp16_t from_double<fp16_t>(double v) noexcept {
  return fp16_t(v);
}

/// y[i] += a * x[i] with one rounding of the product-sum (FMA semantics on
/// the narrow type, matching the CS-1 FMAC datapath for fp16).
inline void fma_update(fp16_t& y, fp16_t a, fp16_t x) noexcept {
  y = fmac(a, x, y);
}
inline void fma_update(float& y, float a, float x) noexcept {
  y = static_cast<float>(static_cast<double>(a) * x + y);
}
inline void fma_update(double& y, double a, double x) noexcept {
  // Plain rounded multiply-add; the fp64 baseline models a conventional CPU.
  y += a * x;
}

/// Paper's mixed mode: fp16 storage/arithmetic, fp32 dot accumulation.
struct MixedPrecision {
  using storage_t = fp16_t;
  using dot_acc_t = float;
  static constexpr std::string_view name = "mixed-hp/sp";
  static void dot_step(dot_acc_t& acc, storage_t a, storage_t b) noexcept {
    acc = mixed_fma(a, b, acc);
  }
};

/// Ablation: everything in fp16 including the dot accumulators.
struct HalfPrecision {
  using storage_t = fp16_t;
  using dot_acc_t = fp16_t;
  static constexpr std::string_view name = "half";
  static void dot_step(dot_acc_t& acc, storage_t a, storage_t b) noexcept {
    acc = fmac(a, b, acc);
  }
};

struct SinglePrecision {
  using storage_t = float;
  using dot_acc_t = float;
  static constexpr std::string_view name = "single";
  static void dot_step(dot_acc_t& acc, storage_t a, storage_t b) noexcept {
    acc += a * b;
  }
};

struct DoublePrecision {
  using storage_t = double;
  using dot_acc_t = double;
  static constexpr std::string_view name = "double";
  static void dot_step(dot_acc_t& acc, storage_t a, storage_t b) noexcept {
    acc += a * b;
  }
};

} // namespace wss
