#pragma once

// Strict environment-variable parsing for every WSS_* knob. Historically
// each consumer called getenv + strtol and *silently ignored* garbage
// ("WSS_SIM_THREADS=fast" ran serial with no hint why) — a forensics
// hazard: a run you believed was parallel, or watched by a watchdog, was
// not. These helpers fail loudly instead, naming the offending variable
// and value, so a typo dies at startup rather than corrupting a long run.
//
// Conventions:
//  * unset        -> the caller's fallback (env vars stay opt-in),
//  * set to junk  -> std::runtime_error naming variable, value and reason,
//  * below min    -> error (a nonsensical request, e.g. 0 threads),
//  * above max    -> clamped (matches the documented clamp semantics of
//                    e.g. Fabric::set_threads).
//
// Header-only so the simulator core (wss_wse), the telemetry layer, the
// bench harness and the tests all share one parser without new link deps.

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace wss::env {

[[noreturn]] inline void fail(const char* name, const char* value,
                              const std::string& why) {
  throw std::runtime_error(std::string("invalid ") + name + "='" +
                           (value != nullptr ? value : "") + "': " + why);
}

/// Raw lookup: nullptr when unset.
[[nodiscard]] inline const char* raw(const char* name) {
  return std::getenv(name);
}

/// True iff `name` is set (even to the empty string).
[[nodiscard]] inline bool is_set(const char* name) {
  return std::getenv(name) != nullptr;
}

/// Signed integer knob in [min_value, max_value]. Unset -> fallback;
/// non-numeric / trailing junk / empty / below min -> error naming the
/// variable; above max -> clamped to max.
[[nodiscard]] inline long long parse_int(const char* name, long long fallback,
                                         long long min_value,
                                         long long max_value) {
  const char* text = std::getenv(name);
  if (text == nullptr) return fallback;
  if (*text == '\0') fail(name, text, "empty value (unset it instead)");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') fail(name, text, "not an integer");
  if (errno == ERANGE) fail(name, text, "out of range");
  if (v < min_value) {
    fail(name, text, "must be >= " + std::to_string(min_value));
  }
  return v > max_value ? max_value : v;
}

/// Unsigned 64-bit knob (e.g. seeds, cycle thresholds). Same contract as
/// parse_int; explicitly rejects negative input instead of wrapping.
[[nodiscard]] inline std::uint64_t parse_u64(const char* name,
                                             std::uint64_t fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr) return fallback;
  if (*text == '\0') fail(name, text, "empty value (unset it instead)");
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == '-') fail(name, text, "must be non-negative");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') fail(name, text, "not an integer");
  if (errno == ERANGE) fail(name, text, "out of range");
  return static_cast<std::uint64_t>(v);
}

/// String knob (paths, directories). Unset -> empty string; set-but-empty
/// is an error (an empty output directory is never what was meant).
[[nodiscard]] inline std::string parse_string(const char* name) {
  const char* text = std::getenv(name);
  if (text == nullptr) return {};
  if (*text == '\0') fail(name, text, "empty value (unset it instead)");
  return text;
}

/// Same contract as parse_string for callers that keep the C-string shape
/// (nullptr = unset): validates loudly, then returns getenv's pointer.
[[nodiscard]] inline const char* parse_cstr(const char* name) {
  const char* text = std::getenv(name);
  if (text != nullptr && *text == '\0') {
    fail(name, text, "empty value (unset it instead)");
  }
  return text;
}

} // namespace wss::env
