#pragma once

// Software emulation of IEEE 754 binary16 ("half", fp16) arithmetic.
//
// The CS-1 datapath performs fp16 adds, multiplies, and fused
// multiply-accumulate (FMAC, no rounding of the product prior to the add) in
// 4-way SIMD. We have no such hardware here, so every operation is emulated
// bit-accurately: operands are binary16, the mathematically exact result is
// formed in binary64 (exact for +, -, *, and the FMAC sum, since any such
// result is an integer multiple of 2^-48 with fewer than 53 significant
// bits), and a single round-to-nearest-even brings it back to binary16.
// Division and sqrt round through binary64 first; the double-rounding
// discrepancy this admits requires the exact quotient to sit within 2^-42
// ulp of a binary16 tie, which never matters at the precision scales this
// library studies.

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <limits>

namespace wss {

namespace detail {

/// Round an IEEE binary64 value to the nearest binary16 bit pattern
/// (round-to-nearest, ties-to-even), handling subnormals, overflow to
/// infinity, and NaN propagation.
std::uint16_t fp16_bits_from_double(double value) noexcept;

/// Exact widening of a binary16 bit pattern to binary64.
double double_from_fp16_bits(std::uint16_t bits) noexcept;

} // namespace detail

/// IEEE binary16 value emulated in software. All arithmetic rounds to
/// nearest-even after each operation, exactly as a binary16 hardware
/// datapath would.
class fp16_t {
public:
  constexpr fp16_t() noexcept = default;

  /// Converting constructor: rounds to nearest binary16.
  explicit fp16_t(double value) noexcept
      : bits_(detail::fp16_bits_from_double(value)) {}
  explicit fp16_t(float value) noexcept
      : bits_(detail::fp16_bits_from_double(static_cast<double>(value))) {}
  explicit fp16_t(int value) noexcept
      : bits_(detail::fp16_bits_from_double(static_cast<double>(value))) {}

  /// Reinterpret a raw bit pattern as a binary16 value.
  static constexpr fp16_t from_bits(std::uint16_t bits) noexcept {
    fp16_t h;
    h.bits_ = bits;
    return h;
  }

  [[nodiscard]] constexpr std::uint16_t bits() const noexcept { return bits_; }

  /// Exact widening conversions (binary16 is a subset of binary32/64).
  [[nodiscard]] double to_double() const noexcept {
    return detail::double_from_fp16_bits(bits_);
  }
  [[nodiscard]] float to_float() const noexcept {
    return static_cast<float>(to_double());
  }
  explicit operator double() const noexcept { return to_double(); }
  explicit operator float() const noexcept { return to_float(); }

  [[nodiscard]] bool is_nan() const noexcept {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
  }
  [[nodiscard]] bool is_inf() const noexcept {
    return (bits_ & 0x7FFFu) == 0x7C00u;
  }
  [[nodiscard]] bool is_finite() const noexcept {
    return (bits_ & 0x7C00u) != 0x7C00u;
  }
  [[nodiscard]] bool is_subnormal() const noexcept {
    return (bits_ & 0x7C00u) == 0 && (bits_ & 0x03FFu) != 0;
  }
  [[nodiscard]] bool is_zero() const noexcept {
    return (bits_ & 0x7FFFu) == 0;
  }
  [[nodiscard]] bool sign_bit() const noexcept { return (bits_ & 0x8000u) != 0; }

  friend fp16_t operator+(fp16_t a, fp16_t b) noexcept {
    return fp16_t(a.to_double() + b.to_double());
  }
  friend fp16_t operator-(fp16_t a, fp16_t b) noexcept {
    return fp16_t(a.to_double() - b.to_double());
  }
  friend fp16_t operator*(fp16_t a, fp16_t b) noexcept {
    return fp16_t(a.to_double() * b.to_double());
  }
  friend fp16_t operator/(fp16_t a, fp16_t b) noexcept {
    return fp16_t(a.to_double() / b.to_double());
  }
  friend fp16_t operator-(fp16_t a) noexcept {
    return from_bits(static_cast<std::uint16_t>(a.bits_ ^ 0x8000u));
  }
  fp16_t& operator+=(fp16_t o) noexcept { return *this = *this + o; }
  fp16_t& operator-=(fp16_t o) noexcept { return *this = *this - o; }
  fp16_t& operator*=(fp16_t o) noexcept { return *this = *this * o; }
  fp16_t& operator/=(fp16_t o) noexcept { return *this = *this / o; }

  // IEEE comparisons (NaN compares false, +0 == -0).
  friend bool operator==(fp16_t a, fp16_t b) noexcept {
    return a.to_double() == b.to_double();
  }
  friend bool operator!=(fp16_t a, fp16_t b) noexcept { return !(a == b); }
  friend bool operator<(fp16_t a, fp16_t b) noexcept {
    return a.to_double() < b.to_double();
  }
  friend bool operator<=(fp16_t a, fp16_t b) noexcept {
    return a.to_double() <= b.to_double();
  }
  friend bool operator>(fp16_t a, fp16_t b) noexcept { return b < a; }
  friend bool operator>=(fp16_t a, fp16_t b) noexcept { return b <= a; }

private:
  std::uint16_t bits_ = 0;
};

/// Fused multiply-accumulate with binary16 result: d = a*b + c with NO
/// rounding of the product prior to the add (the CS-1 FMAC semantics).
/// The exact value of a*b + c for binary16 inputs fits in binary64, so one
/// final rounding reproduces the hardware bit-for-bit.
inline fp16_t fmac(fp16_t a, fp16_t b, fp16_t c) noexcept {
  return fp16_t(a.to_double() * b.to_double() + c.to_double());
}

/// Mixed-precision multiply-accumulate: binary16 multiply feeding a binary32
/// accumulator (the CS-1 mixed hp-multiply / sp-add mode used for inner
/// products). The product of two binary16 values is exact in binary32; the
/// accumulation rounds to binary32 once per step, as the hardware does.
inline float mixed_fma(fp16_t a, fp16_t b, float acc) noexcept {
  return acc + a.to_float() * b.to_float();
}

fp16_t sqrt(fp16_t x) noexcept;
fp16_t abs(fp16_t x) noexcept;

/// Distance in representable binary16 values between a and b (0 if equal).
/// NaN arguments yield the maximum distance. Useful for accuracy tests.
std::uint32_t fp16_ulp_distance(fp16_t a, fp16_t b) noexcept;

std::ostream& operator<<(std::ostream& os, fp16_t h);

/// Traits mirroring std::numeric_limits for the emulated type.
struct fp16_limits {
  static constexpr int digits = 11;        // significand bits incl. hidden
  static constexpr int max_exponent = 16;  // 2^15 <= max < 2^16
  static constexpr int min_exponent = -13; // smallest normal = 2^-14
  static fp16_t max() noexcept { return fp16_t::from_bits(0x7BFFu); }      // 65504
  static fp16_t min() noexcept { return fp16_t::from_bits(0x0400u); }      // 2^-14
  static fp16_t denorm_min() noexcept { return fp16_t::from_bits(0x0001u); } // 2^-24
  static fp16_t epsilon() noexcept { return fp16_t::from_bits(0x1400u); }  // 2^-10
  static fp16_t infinity() noexcept { return fp16_t::from_bits(0x7C00u); }
  static fp16_t quiet_nan() noexcept { return fp16_t::from_bits(0x7E00u); }
  static fp16_t lowest() noexcept { return fp16_t::from_bits(0xFBFFu); }
};

} // namespace wss
