#pragma once

// Small deterministic RNG (SplitMix64 + xoshiro256**) so every test,
// example, and benchmark is reproducible without dragging in <random>'s
// implementation-defined distributions.

#include <cstdint>

namespace wss {

/// xoshiro256** seeded through SplitMix64. Deterministic across platforms.
class Rng {
public:
  explicit Rng(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) noexcept { return next_u64() % n; }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

} // namespace wss
