#include "mesh/partition.hpp"

#include <limits>

namespace wss {

namespace {

/// Halo area (faces exposed per block) for decomposing mesh g over a
/// px x py x pz grid: the strong-scaling communication cost driver.
double halo_area(Grid3 g, int px, int py, int pz) {
  const double bx = static_cast<double>(g.nx) / px;
  const double by = static_cast<double>(g.ny) / py;
  const double bz = static_cast<double>(g.nz) / pz;
  double area = 0.0;
  if (px > 1) area += 2.0 * by * bz;
  if (py > 1) area += 2.0 * bx * bz;
  if (pz > 1) area += 2.0 * bx * by;
  return area;
}

} // namespace

std::array<int, 3> choose_process_grid(Grid3 g, int p) {
  std::array<int, 3> best = {p, 1, 1};
  double best_area = std::numeric_limits<double>::max();
  for (int px = 1; px <= p; ++px) {
    if (p % px != 0) continue;
    const int rest = p / px;
    for (int py = 1; py <= rest; ++py) {
      if (rest % py != 0) continue;
      const int pz = rest / py;
      if (px > g.nx || py > g.ny || pz > g.nz) continue;
      const double area = halo_area(g, px, py, pz);
      if (area < best_area) {
        best_area = area;
        best = {px, py, pz};
      }
    }
  }
  return best;
}

} // namespace wss
