#pragma once

// Partitioning helpers shared by the WSE mapping (one Z pencil per tile, 2D
// blocks for the 9-point mapping) and the cluster baseline (3D blocks over
// MPI-style ranks).

#include <array>
#include <cassert>
#include <cmath>

#include "mesh/grid.hpp"

namespace wss {

/// Balanced split of n items into p consecutive chunks; chunk r gets
/// floor(n/p) items plus one extra for the first n%p chunks.
struct Span1 {
  int begin = 0;
  int end = 0;
  [[nodiscard]] constexpr int count() const { return end - begin; }
};

constexpr Span1 split1(int n, int parts, int rank) {
  const int base = n / parts;
  const int extra = n % parts;
  const int begin = rank * base + (rank < extra ? rank : extra);
  const int count = base + (rank < extra ? 1 : 0);
  return {begin, begin + count};
}

/// A 3D box partition of a Grid3 over a px x py x pz process grid.
struct Block3 {
  Span1 x, y, z;
  [[nodiscard]] constexpr std::size_t count() const {
    return static_cast<std::size_t>(x.count()) *
           static_cast<std::size_t>(y.count()) *
           static_cast<std::size_t>(z.count());
  }
};

constexpr Block3 block3(Grid3 g, int px, int py, int pz, int rx, int ry,
                        int rz) {
  return {split1(g.nx, px, rx), split1(g.ny, py, ry), split1(g.nz, pz, rz)};
}

/// Choose a near-cubic process grid px*py*pz == p for a cluster run, the
/// decomposition a well-tuned MPI stencil code would pick: factor p so the
/// block surface area (halo volume) is near minimal for the given mesh.
std::array<int, 3> choose_process_grid(Grid3 g, int p);

} // namespace wss
