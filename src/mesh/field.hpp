#pragma once

// Dense fields over structured grids. A Field3<T> is a value per meshpoint
// stored z-fastest; the BiCGStab vectors, stencil diagonals, and MFIX
// variables are all fields.

#include <cassert>
#include <vector>

#include "mesh/grid.hpp"

namespace wss {

template <typename T>
class Field3 {
public:
  Field3() = default;
  explicit Field3(Grid3 grid, T fill = T{})
      : grid_(grid), data_(grid.size(), fill) {}

  [[nodiscard]] const Grid3& grid() const { return grid_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  T& operator()(int x, int y, int z) {
    assert(grid_.contains(x, y, z));
    return data_[grid_.index(x, y, z)];
  }
  const T& operator()(int x, int y, int z) const {
    assert(grid_.contains(x, y, z));
    return data_[grid_.index(x, y, z)];
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }

  void fill(T value) { data_.assign(data_.size(), value); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

private:
  Grid3 grid_;
  std::vector<T> data_;
};

template <typename T>
class Field2 {
public:
  Field2() = default;
  explicit Field2(Grid2 grid, T fill = T{})
      : grid_(grid), data_(grid.size(), fill) {}

  [[nodiscard]] const Grid2& grid() const { return grid_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  T& operator()(int x, int y) {
    assert(grid_.contains(x, y));
    return data_[grid_.index(x, y)];
  }
  const T& operator()(int x, int y) const {
    assert(grid_.contains(x, y));
    return data_[grid_.index(x, y)];
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }

  void fill(T value) { data_.assign(data_.size(), value); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

private:
  Grid2 grid_;
  std::vector<T> data_;
};

/// Convert a field between element types (e.g. fp64 reference -> fp16
/// storage), rounding once per element.
template <typename Dst, typename Src>
Field3<Dst> convert_field(const Field3<Src>& src) {
  Field3<Dst> dst(src.grid());
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<Dst>(static_cast<double>(src[i]));
  }
  return dst;
}

} // namespace wss
