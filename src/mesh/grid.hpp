#pragma once

// Structured index spaces for the paper's meshes. A Grid3 X x Y x Z mesh is
// the domain of the 7-point stencil problems; a Grid2 mesh is the domain of
// the 9-point (2D) mapping of Section IV-2. Storage order is z-fastest to
// match the CS-1 mapping where each (x, y) tile owns a contiguous Z pencil.

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace wss {

/// A 3D structured grid of X x Y x Z points, indexed (x, y, z), z fastest.
struct Grid3 {
  int nx = 0;
  int ny = 0;
  int nz = 0;

  constexpr Grid3() = default;
  constexpr Grid3(int x, int y, int z) : nx(x), ny(y), nz(z) {}

  [[nodiscard]] constexpr std::size_t size() const {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
           static_cast<std::size_t>(nz);
  }

  [[nodiscard]] constexpr std::size_t index(int x, int y, int z) const {
    return (static_cast<std::size_t>(x) * static_cast<std::size_t>(ny) +
            static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(nz) +
           static_cast<std::size_t>(z);
  }

  [[nodiscard]] constexpr bool contains(int x, int y, int z) const {
    return x >= 0 && x < nx && y >= 0 && y < ny && z >= 0 && z < nz;
  }

  friend constexpr bool operator==(const Grid3&, const Grid3&) = default;
};

/// A 2D structured grid of X x Y points, indexed (x, y), y fastest.
struct Grid2 {
  int nx = 0;
  int ny = 0;

  constexpr Grid2() = default;
  constexpr Grid2(int x, int y) : nx(x), ny(y) {}

  [[nodiscard]] constexpr std::size_t size() const {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);
  }
  [[nodiscard]] constexpr std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(x) * static_cast<std::size_t>(ny) +
           static_cast<std::size_t>(y);
  }
  [[nodiscard]] constexpr bool contains(int x, int y) const {
    return x >= 0 && x < nx && y >= 0 && y < ny;
  }

  friend constexpr bool operator==(const Grid2&, const Grid2&) = default;
};

} // namespace wss
