#include "cluster/comm.hpp"

#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>

namespace wss::cluster {

int Comm::size() const { return world_->size(); }

void Comm::send(int dst, int tag, std::span<const double> data) {
  World::Message msg{rank_, tag, std::vector<double>(data.begin(), data.end())};
  world_->deliver(dst, std::move(msg));
  ++stats_.messages_sent;
  stats_.bytes_sent += data.size_bytes();
}

void Comm::recv(int src, int tag, std::span<double> data) {
  World::Message msg = world_->take(rank_, src, tag);
  if (msg.data.size() != data.size()) {
    throw std::runtime_error("recv size mismatch");
  }
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = msg.data[i];
}

double Comm::allreduce_sum(double value) {
  ++stats_.allreduces;
  return world_->allreduce(rank_, value);
}

void Comm::barrier() {
  ++stats_.barriers;
  world_->barrier_wait();
}

World::World(int nranks) : nranks_(nranks) {
  if (nranks < 1) throw std::invalid_argument("need at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void World::run(const std::function<void(Comm&)>& fn) {
  last_stats_.assign(static_cast<std::size_t>(nranks_), CommStats{});
  // Fresh collective state per run.
  coll_arrived_ = 0;
  coll_generation_ = 0;
  coll_sum_ = 0.0;

  std::vector<std::thread> threads;
  std::exception_ptr error;
  std::mutex error_mu;
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(this, r);
      try {
        fn(comm);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
      last_stats_[static_cast<std::size_t>(r)] = comm.stats();
    });
  }
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

CommStats World::total_stats() const {
  CommStats total;
  for (const auto& s : last_stats_) total += s;
  return total;
}

void World::deliver(int dst, Message msg) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    const std::lock_guard<std::mutex> lock(box.mu);
    box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

World::Message World::take(int dst, int src, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        Message msg = std::move(*it);
        box.messages.erase(it);
        return msg;
      }
    }
    box.cv.wait(lock);
  }
}

double World::allreduce(int, double value) {
  std::unique_lock<std::mutex> lock(coll_mu_);
  const std::uint64_t my_generation = coll_generation_;
  coll_sum_ += value;
  ++coll_arrived_;
  if (coll_arrived_ == nranks_) {
    coll_result_ = coll_sum_;
    coll_sum_ = 0.0;
    coll_arrived_ = 0;
    ++coll_generation_;
    coll_cv_.notify_all();
    return coll_result_;
  }
  coll_cv_.wait(lock, [&] { return coll_generation_ != my_generation; });
  return coll_result_;
}

void World::barrier_wait() { (void)allreduce(0, 0.0); }

} // namespace wss::cluster
