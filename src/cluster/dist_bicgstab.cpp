#include "cluster/dist_bicgstab.hpp"

#include <cmath>
#include <vector>

#include "telemetry/probe.hpp"

namespace wss::cluster {

namespace {

/// Rank-local block with one ghost layer in every direction.
class LocalBlock {
public:
  LocalBlock(Grid3 mesh, std::array<int, 3> pgrid, int rank)
      : pgrid_(pgrid) {
    coords_ = {rank / (pgrid[1] * pgrid[2]),
               (rank / pgrid[2]) % pgrid[1],
               rank % pgrid[2]};
    box_ = block3(mesh, pgrid[0], pgrid[1], pgrid[2], coords_[0], coords_[1],
                  coords_[2]);
    nx_ = box_.x.count();
    ny_ = box_.y.count();
    nz_ = box_.z.count();
  }

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }
  [[nodiscard]] const Block3& box() const { return box_; }
  [[nodiscard]] std::size_t volume() const {
    return static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) *
           static_cast<std::size_t>(nz_);
  }
  [[nodiscard]] std::size_t padded() const {
    return static_cast<std::size_t>(nx_ + 2) *
           static_cast<std::size_t>(ny_ + 2) *
           static_cast<std::size_t>(nz_ + 2);
  }
  /// Index into a padded array; i/j/k in [-1, n].
  [[nodiscard]] std::size_t at(int i, int j, int k) const {
    return (static_cast<std::size_t>(i + 1) * static_cast<std::size_t>(ny_ + 2) +
            static_cast<std::size_t>(j + 1)) *
               static_cast<std::size_t>(nz_ + 2) +
           static_cast<std::size_t>(k + 1);
  }

  /// Rank of the neighbor across `face` (0:x-,1:x+,2:y-,3:y+,4:z-,5:z+),
  /// or -1 at the physical boundary.
  [[nodiscard]] int neighbor(int face) const {
    std::array<int, 3> c = coords_;
    const int axis = face / 2;
    c[static_cast<std::size_t>(axis)] += (face % 2 == 0) ? -1 : 1;
    if (c[static_cast<std::size_t>(axis)] < 0 ||
        c[static_cast<std::size_t>(axis)] >=
            pgrid_[static_cast<std::size_t>(axis)]) {
      return -1;
    }
    return (c[0] * pgrid_[1] + c[1]) * pgrid_[2] + c[2];
  }

private:
  std::array<int, 3> pgrid_;
  std::array<int, 3> coords_;
  Block3 box_;
  int nx_ = 0, ny_ = 0, nz_ = 0;
};

/// Pack one face plane of the padded field into a buffer.
void pack_face(const LocalBlock& blk, const std::vector<double>& v, int face,
               std::vector<double>& buf) {
  buf.clear();
  const int nx = blk.nx();
  const int ny = blk.ny();
  const int nz = blk.nz();
  switch (face) {
    case 0:
      for (int j = 0; j < ny; ++j)
        for (int k = 0; k < nz; ++k) buf.push_back(v[blk.at(0, j, k)]);
      break;
    case 1:
      for (int j = 0; j < ny; ++j)
        for (int k = 0; k < nz; ++k) buf.push_back(v[blk.at(nx - 1, j, k)]);
      break;
    case 2:
      for (int i = 0; i < nx; ++i)
        for (int k = 0; k < nz; ++k) buf.push_back(v[blk.at(i, 0, k)]);
      break;
    case 3:
      for (int i = 0; i < nx; ++i)
        for (int k = 0; k < nz; ++k) buf.push_back(v[blk.at(i, ny - 1, k)]);
      break;
    case 4:
      for (int i = 0; i < nx; ++i)
        for (int j = 0; j < ny; ++j) buf.push_back(v[blk.at(i, j, 0)]);
      break;
    default:
      for (int i = 0; i < nx; ++i)
        for (int j = 0; j < ny; ++j) buf.push_back(v[blk.at(i, j, nz - 1)]);
      break;
  }
}

/// Unpack a received buffer into the ghost plane across `face`.
void unpack_ghost(const LocalBlock& blk, std::vector<double>& v, int face,
                  const std::vector<double>& buf) {
  const int nx = blk.nx();
  const int ny = blk.ny();
  const int nz = blk.nz();
  std::size_t idx = 0;
  switch (face) {
    case 0:
      for (int j = 0; j < ny; ++j)
        for (int k = 0; k < nz; ++k) v[blk.at(-1, j, k)] = buf[idx++];
      break;
    case 1:
      for (int j = 0; j < ny; ++j)
        for (int k = 0; k < nz; ++k) v[blk.at(nx, j, k)] = buf[idx++];
      break;
    case 2:
      for (int i = 0; i < nx; ++i)
        for (int k = 0; k < nz; ++k) v[blk.at(i, -1, k)] = buf[idx++];
      break;
    case 3:
      for (int i = 0; i < nx; ++i)
        for (int k = 0; k < nz; ++k) v[blk.at(i, ny, k)] = buf[idx++];
      break;
    case 4:
      for (int i = 0; i < nx; ++i)
        for (int j = 0; j < ny; ++j) v[blk.at(i, j, -1)] = buf[idx++];
      break;
    default:
      for (int i = 0; i < nx; ++i)
        for (int j = 0; j < ny; ++j) v[blk.at(i, j, nz)] = buf[idx++];
      break;
  }
}

std::size_t face_size(const LocalBlock& blk, int face) {
  switch (face / 2) {
    case 0: return static_cast<std::size_t>(blk.ny()) * static_cast<std::size_t>(blk.nz());
    case 1: return static_cast<std::size_t>(blk.nx()) * static_cast<std::size_t>(blk.nz());
    default: return static_cast<std::size_t>(blk.nx()) * static_cast<std::size_t>(blk.ny());
  }
}

void halo_exchange(Comm& comm, const LocalBlock& blk, std::vector<double>& v) {
  std::array<std::vector<double>, 6> sendbuf;
  // Buffered sends first (no deadlock), then blocking receives.
  for (int face = 0; face < 6; ++face) {
    const int nb = blk.neighbor(face);
    if (nb < 0) continue;
    pack_face(blk, v, face, sendbuf[static_cast<std::size_t>(face)]);
    comm.send(nb, face, std::span<const double>(sendbuf[static_cast<std::size_t>(face)]));
  }
  std::vector<double> recvbuf;
  for (int face = 0; face < 6; ++face) {
    const int nb = blk.neighbor(face);
    if (nb < 0) continue;
    // Our ghost across `face` is filled by the neighbor's opposite face
    // send, which carries the neighbor's tag == opposite(face).
    const int opposite = face ^ 1;
    recvbuf.resize(face_size(blk, face));
    comm.recv(nb, opposite, std::span<double>(recvbuf));
    unpack_ghost(blk, v, face, recvbuf);
  }
}

} // namespace

DistSolveResult distributed_bicgstab(World& world, const Stencil7<double>& a,
                                     const Field3<double>& b,
                                     Field3<double>& x,
                                     const SolveControls& controls) {
  const Grid3 mesh = a.grid;
  const auto pgrid = choose_process_grid(mesh, world.size());
  DistSolveResult result;

  // The probe lives on the host thread only: ranks run concurrently inside
  // world.run and the telemetry sinks are not thread-safe, so we bracket
  // the whole distributed solve and record the rank-0 result afterwards.
  telemetry::SolverProbe probe(controls.metrics, controls.spans,
                               controls.probe_name);
  auto solve_span = probe.phase("dist_bicgstab");

  world.run([&](Comm& comm) {
    const LocalBlock blk(mesh, pgrid, comm.rank());
    const std::size_t padded = blk.padded();

    // Local copies of the six (plus diagonal) stencil coefficient arrays,
    // interior only (unpadded).
    const std::size_t vol = blk.volume();
    std::vector<double> diag(vol), cxp(vol), cxm(vol), cyp(vol), cym(vol),
        czp(vol), czm(vol), rhs(vol);
    {
      std::size_t i = 0;
      for (int gx = blk.box().x.begin; gx < blk.box().x.end; ++gx) {
        for (int gy = blk.box().y.begin; gy < blk.box().y.end; ++gy) {
          for (int gz = blk.box().z.begin; gz < blk.box().z.end; ++gz, ++i) {
            diag[i] = a.diag(gx, gy, gz);
            cxp[i] = a.xp(gx, gy, gz);
            cxm[i] = a.xm(gx, gy, gz);
            cyp[i] = a.yp(gx, gy, gz);
            cym[i] = a.ym(gx, gy, gz);
            czp[i] = a.zp(gx, gy, gz);
            czm[i] = a.zm(gx, gy, gz);
            rhs[i] = b(gx, gy, gz);
          }
        }
      }
    }
    auto lin = [&](int i, int j, int k) {
      return (static_cast<std::size_t>(i) * static_cast<std::size_t>(blk.ny()) +
              static_cast<std::size_t>(j)) *
                 static_cast<std::size_t>(blk.nz()) +
             static_cast<std::size_t>(k);
    };

    // Padded work vectors (ghosts zero => Dirichlet closure at the
    // physical boundary for free).
    std::vector<double> vx(padded, 0.0), vr(padded, 0.0), vr0(padded, 0.0),
        vp(padded, 0.0), vs(padded, 0.0), vq(padded, 0.0), vy(padded, 0.0),
        tmp(padded, 0.0);

    auto spmv = [&](std::vector<double>& vin, std::vector<double>& vout) {
      halo_exchange(comm, blk, vin);
      for (int i = 0; i < blk.nx(); ++i) {
        for (int j = 0; j < blk.ny(); ++j) {
          for (int k = 0; k < blk.nz(); ++k) {
            const std::size_t c = lin(i, j, k);
            vout[blk.at(i, j, k)] =
                diag[c] * vin[blk.at(i, j, k)] +
                cxp[c] * vin[blk.at(i + 1, j, k)] +
                cxm[c] * vin[blk.at(i - 1, j, k)] +
                cyp[c] * vin[blk.at(i, j + 1, k)] +
                cym[c] * vin[blk.at(i, j - 1, k)] +
                czp[c] * vin[blk.at(i, j, k + 1)] +
                czm[c] * vin[blk.at(i, j, k - 1)];
          }
        }
      }
    };
    auto dot = [&](const std::vector<double>& u, const std::vector<double>& v) {
      double local = 0.0;
      for (int i = 0; i < blk.nx(); ++i)
        for (int j = 0; j < blk.ny(); ++j)
          for (int k = 0; k < blk.nz(); ++k)
            local += u[blk.at(i, j, k)] * v[blk.at(i, j, k)];
      return comm.allreduce_sum(local);
    };
    auto each = [&](auto&& f) {
      for (int i = 0; i < blk.nx(); ++i)
        for (int j = 0; j < blk.ny(); ++j)
          for (int k = 0; k < blk.nz(); ++k) f(blk.at(i, j, k), lin(i, j, k));
    };

    // r0 = b - A x0 (x0 = 0), p = r = r0.
    each([&](std::size_t pi, std::size_t ci) { vr[pi] = rhs[ci]; });
    each([&](std::size_t pi, std::size_t) { vr0[pi] = vr[pi]; vp[pi] = vr[pi]; });

    const double bnorm = std::sqrt(dot(vr, vr));
    double rho = dot(vr0, vr);
    SolveResult local_result;

    if (bnorm > 0.0) {
      for (int it = 0; it < controls.max_iterations; ++it) {
        // rho divides alpha and beta: check it before either, per
        // Algorithm 1 (ranks all see the same allreduced scalars, so the
        // break is collective).
        if (rho == 0.0 || !std::isfinite(rho)) {
          local_result.reason = StopReason::Breakdown;
          local_result.breakdown = std::isfinite(rho)
                                       ? BreakdownKind::RhoZero
                                       : BreakdownKind::NonFiniteScalar;
          break;
        }
        spmv(vp, vs);
        const double r0s = dot(vr0, vs);
        if (r0s == 0.0 || !std::isfinite(r0s)) {
          local_result.reason = StopReason::Breakdown;
          local_result.breakdown = std::isfinite(r0s)
                                       ? BreakdownKind::R0SZero
                                       : BreakdownKind::NonFiniteScalar;
          break;
        }
        const double alpha = rho / r0s;
        each([&](std::size_t pi, std::size_t) { vq[pi] = vr[pi] - alpha * vs[pi]; });
        spmv(vq, vy);
        const double qy = dot(vq, vy);
        const double yy = dot(vy, vy);
        // Both zeros are omega breakdowns: yy == 0 leaves omega
        // undefined, qy == 0 zeroes it and beta = alpha/omega * ...
        // would divide by zero.
        if (yy == 0.0 || qy == 0.0 || !std::isfinite(qy) ||
            !std::isfinite(yy)) {
          local_result.reason = StopReason::Breakdown;
          local_result.breakdown =
              (std::isfinite(qy) && std::isfinite(yy))
                  ? BreakdownKind::OmegaZero
                  : BreakdownKind::NonFiniteScalar;
          break;
        }
        const double omega = qy / yy;
        each([&](std::size_t pi, std::size_t) {
          vx[pi] += alpha * vp[pi] + omega * vq[pi];
          vr[pi] = vq[pi] - omega * vy[pi];
        });
        const double rho_next = dot(vr0, vr);
        const double rnorm = std::sqrt(dot(vr, vr));
        if (!std::isfinite(rnorm)) {
          local_result.reason = StopReason::Breakdown;
          local_result.breakdown = BreakdownKind::NonFiniteResidual;
          break;
        }
        local_result.relative_residuals.push_back(rnorm / bnorm);
        ++local_result.iterations;
        if (rnorm / bnorm < controls.tolerance) {
          local_result.reason = StopReason::Converged;
          break;
        }
        const double beta = (alpha / omega) * (rho_next / rho);
        rho = rho_next;
        each([&](std::size_t pi, std::size_t) {
          vp[pi] = vr[pi] + beta * (vp[pi] - omega * vs[pi]);
        });
      }
    } else {
      local_result.reason = StopReason::Converged;
      local_result.relative_residuals.push_back(0.0);
    }

    // Gather: ranks own disjoint regions of x (shared memory here).
    {
      std::size_t c = 0;
      for (int gx = blk.box().x.begin; gx < blk.box().x.end; ++gx) {
        for (int gy = blk.box().y.begin; gy < blk.box().y.end; ++gy) {
          for (int gz = blk.box().z.begin; gz < blk.box().z.end; ++gz, ++c) {
            x(gx, gy, gz) = vx[blk.at(gx - blk.box().x.begin,
                                      gy - blk.box().y.begin,
                                      gz - blk.box().z.begin)];
          }
        }
      }
    }
    if (comm.rank() == 0) {
      result.solve = local_result;
    }
  });

  result.comm = world.total_stats();
  for (std::size_t i = 0; i < result.solve.relative_residuals.size(); ++i) {
    probe.iteration(static_cast<int>(i) + 1, result.solve.relative_residuals[i],
                    result.solve.flops.total());
  }
  probe.finish(to_string(result.solve.reason), result.solve.iterations,
               result.solve.final_residual());
  if (controls.metrics != nullptr) {
    const std::string prefix =
        controls.probe_name != nullptr ? controls.probe_name : "solver";
    controls.metrics->gauge(prefix + ".comm.messages_sent")
        .set(static_cast<double>(result.comm.messages_sent));
    controls.metrics->gauge(prefix + ".comm.bytes_sent")
        .set(static_cast<double>(result.comm.bytes_sent));
    controls.metrics->gauge(prefix + ".comm.allreduces")
        .set(static_cast<double>(result.comm.allreduces));
    controls.metrics->gauge(prefix + ".comm.barriers")
        .set(static_cast<double>(result.comm.barriers));
  }
  return result;
}

IterationCommVolume iteration_comm_volume(Grid3 mesh, int ranks) {
  const auto pg = choose_process_grid(mesh, ranks);
  const double bx = static_cast<double>(mesh.nx) / pg[0];
  const double by = static_cast<double>(mesh.ny) / pg[1];
  const double bz = static_cast<double>(mesh.nz) / pg[2];

  IterationCommVolume v;
  double faces_bytes = 0.0;
  int messages = 0;
  if (pg[0] > 1) {
    faces_bytes += 2.0 * by * bz * 8.0;
    messages += 2;
  }
  if (pg[1] > 1) {
    faces_bytes += 2.0 * bx * bz * 8.0;
    messages += 2;
  }
  if (pg[2] > 1) {
    faces_bytes += 2.0 * bx * by * 8.0;
    messages += 2;
  }
  // Two SpMVs (= two halo exchanges) per BiCGStab iteration.
  v.halo_bytes_per_rank = 2.0 * faces_bytes;
  v.halo_messages_per_rank = 2 * messages;
  v.allreduces = 4;
  return v;
}

} // namespace wss::cluster
