#pragma once

// Distributed-memory fp64 BiCGStab with 3D block decomposition and face
// halo exchange — the algorithm MFIX runs on the Joule cluster (Section
// V-A). Runs functionally on the thread-backed runtime for validation;
// its communication instrumentation (surface bytes, message counts, four
// allreduces per iteration) parameterizes the cluster cost model.

#include <array>

#include "cluster/comm.hpp"
#include "mesh/field.hpp"
#include "mesh/partition.hpp"
#include "solver/bicgstab.hpp"
#include "stencil/stencil7.hpp"

namespace wss::cluster {

struct DistSolveResult {
  SolveResult solve;
  CommStats comm; ///< aggregate over ranks
};

/// Solve A x = b over `world.size()` ranks with the process grid chosen by
/// choose_process_grid. `a` and `b` live replicated on the host (this is a
/// validation harness, not a production distribution layer); the solution
/// is gathered back into `x`.
DistSolveResult distributed_bicgstab(World& world, const Stencil7<double>& a,
                                     const Field3<double>& b,
                                     Field3<double>& x,
                                     const SolveControls& controls);

/// Communication volume per rank per iteration for the cost model, derived
/// analytically from the decomposition (counted, not simulated): bytes of
/// halo traffic and number of point-to-point messages for the two SpMVs,
/// plus the four allreduces.
struct IterationCommVolume {
  double halo_bytes_per_rank = 0.0;
  int halo_messages_per_rank = 0;
  int allreduces = 4;
};
IterationCommVolume iteration_comm_volume(Grid3 mesh, int ranks);

} // namespace wss::cluster
