#pragma once

// A small thread-backed message-passing runtime with MPI-like semantics
// (ranks, tagged blocking send/recv, allreduce, barrier). This is the
// substrate for the Joule-cluster baseline: the distributed BiCGStab runs
// on it functionally, and its instrumentation (bytes, message counts,
// collective counts) drives the calibrated strong-scaling cost model that
// regenerates Figs. 7-8 at published scales.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

namespace wss::cluster {

/// Per-rank communication counters, for the cost model.
struct CommStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t allreduces = 0;
  std::uint64_t barriers = 0;

  CommStats& operator+=(const CommStats& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    allreduces += o.allreduces;
    barriers += o.barriers;
    return *this;
  }
};

class World;

/// Per-rank communicator handle. Valid only inside World::run.
class Comm {
public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Buffered (non-blocking-complete) send: copies the payload and returns.
  void send(int dst, int tag, std::span<const double> data);

  /// Blocking receive matching (src, tag). Payload size must match exactly.
  void recv(int src, int tag, std::span<double> data);

  /// Global sum; all ranks must call. Returns the same value everywhere.
  double allreduce_sum(double value);

  void barrier();

  [[nodiscard]] const CommStats& stats() const { return stats_; }

private:
  friend class World;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}
  World* world_;
  int rank_;
  CommStats stats_;
};

/// Owns the rank threads and the mailboxes.
class World {
public:
  explicit World(int nranks);

  /// Run `fn` on every rank concurrently; returns when all finish.
  /// Exceptions thrown by any rank are rethrown (first one wins).
  void run(const std::function<void(Comm&)>& fn);

  [[nodiscard]] int size() const { return nranks_; }

  /// Aggregate stats from the last run.
  [[nodiscard]] const std::vector<CommStats>& rank_stats() const {
    return last_stats_;
  }
  [[nodiscard]] CommStats total_stats() const;

private:
  friend class Comm;

  struct Message {
    int src;
    int tag;
    std::vector<double> data;
  };
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  void deliver(int dst, Message msg);
  Message take(int dst, int src, int tag);
  double allreduce(int rank, double value);
  void barrier_wait();

  int nranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<CommStats> last_stats_;

  // allreduce / barrier shared state
  std::mutex coll_mu_;
  std::condition_variable coll_cv_;
  int coll_arrived_ = 0;
  std::uint64_t coll_generation_ = 0;
  double coll_sum_ = 0.0;
  double coll_result_ = 0.0;
};

} // namespace wss::cluster
