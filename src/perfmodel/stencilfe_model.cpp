#include "perfmodel/stencilfe_model.hpp"

#include <algorithm>

namespace wss::perfmodel {

StencilFeProjection project_stencilfe_generation(
    const stencilfe::TransitionFn& fn, int nx, int ny) {
  using stencilfe::BoundaryPolicy;
  const double f = fn.fields;
  const double terms = static_cast<double>(fn.terms.size());

  // The generation time is set by the slowest (interior-shaped) tile,
  // and every tile runs the same straight-line program in parallel, so
  // the projection is a structural count over that program, independent
  // of the grid size except for the periodic wrap lanes.
  //
  // Exchange: two one-hop rounds (own fields east/west, then the 3F-word
  // row packet north/south). Control steps are free; each send streams
  // two packed fp16 words per cycle and each receive is gated by fabric
  // arrival. For one field that pipeline costs 11 cycles on the critical
  // tile; each extra field adds one send cycle and three arrival cycles
  // (validated against the simulator across all shipped workloads).
  double exchange = 11.0 + 4.0 * (f - 1.0);
  if (fn.boundary == BoundaryPolicy::Periodic) {
    // Wrap lanes traverse the whole row/column at one hop per cycle; the
    // first three hops hide under the interior parity exchange.
    exchange += std::max(0, nx - 3) + std::max(0, ny - 3);
  }

  // Compute: one SetScalar + one single-element FMAC per term, plus the
  // accumulator zero fill, the next-state stage (copy or LifeV — both one
  // cycle), and the commit copy.
  const double compute = 2.0 * terms + 3.0;

  StencilFeProjection p;
  p.exchange_cycles = exchange;
  p.compute_cycles = compute;
  return p;
}

} // namespace wss::perfmodel
