#pragma once

// Paper-anchored performance report (docs/PROFILING.md): joins the cycle
// profiler's measured per-phase cycles against the Section V CS1Model
// predictions and the Table I flop census, then projects the run to the
// paper's headline configuration (600 x 595 x 1536 mesh, 28.1 us per
// BiCGStab iteration, 0.86 PFLOPS) so every profiled simulation prints its
// distance from the reproduction target.

#include <string>
#include <vector>

#include "mesh/grid.hpp"
#include "perfmodel/cs1_model.hpp"
#include "telemetry/profiler.hpp"

namespace wss::perfmodel {

/// One phase of the iteration: measured (profiler) vs modeled (CS1Model)
/// cycles per tile per iteration.
struct PhaseRow {
  std::string phase;
  double measured_cycles = 0.0;
  double model_cycles = 0.0;
  /// (measured - model) / model * 100; 0 when the model predicts 0.
  [[nodiscard]] double delta_pct() const {
    return model_cycles > 0.0
               ? (measured_cycles - model_cycles) / model_cycles * 100.0
               : 0.0;
  }
};

struct PerfReport {
  // run shape
  int fabric_x = 0;
  int fabric_y = 0;
  int z = 0;
  int iterations = 0;

  std::vector<PhaseRow> phases; ///< spmv, dot, axpy, allreduce, control

  // measured totals (per tile per iteration, averaged over tiles)
  double measured_cycles_per_iter = 0.0;
  double model_cycles_per_iter = 0.0;
  double us_per_iter = 0.0;      ///< measured cycles at the modeled clock
  double achieved_flops = 0.0;   ///< Table I census over measured time

  // full-wafer projection: model at the paper mesh, scaled by the
  // measured/model ratio observed on this run
  Grid3 paper_mesh{600, 595, 1536};
  double wafer_us_per_iter = 0.0;
  double wafer_pflops = 0.0;

  // the reproduction anchors (paper Sec. V, Table I)
  double paper_us_per_iter = 28.1;
  double paper_pflops = 0.86;

  // critical-path summary (per completed iteration window)
  struct PathSummary {
    std::uint64_t length_cycles = 0;
    std::size_t tile_hops = 0;
    bool truncated = false;
  };
  std::vector<PathSummary> critical_paths;

  [[nodiscard]] std::string pretty() const;
  [[nodiscard]] std::string to_json() const;
};

/// Build the report from a profiled BiCGStab simulation run. `z` is the
/// per-tile pencil length and `iterations` the solver iterations executed
/// (phase bins include the initial rho and drain cycles, which show up as
/// small positive deltas at low iteration counts).
[[nodiscard]] PerfReport make_perf_report(const telemetry::Profiler& prof,
                                          int z, int iterations,
                                          const CS1Model& model = CS1Model{});

/// If WSS_PROF_JSON is set, write `{"profile": ..., "perf_report": ...}`
/// to that path (report may be null: profile only). Returns true if a file
/// was written; on failure returns false with `*error` set.
bool maybe_write_prof_json(const telemetry::Profiler& prof,
                           const PerfReport* report,
                           std::string* path_out = nullptr,
                           std::string* error = nullptr);

} // namespace wss::perfmodel
