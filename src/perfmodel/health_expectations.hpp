#pragma once

// The expectation query API for the runtime health engine (docs/HEALTH.md):
// builders that turn the analytic performance models into
// telemetry::HealthExpectations — expected cycles per tile per iteration
// for each ProgPhase — which programs hand to their TimeSeriesSampler.
// The health engine's perfmodel_drift rule then gates the live windowed
// cycle attribution against these projections (WSS_HEALTH_TOL_PCT),
// turning the paper's measured-vs-model validation discipline into a
// continuous runtime check.
//
// This lives in wss_perfmodel (which links wss_telemetry's headers through
// the dependency chain), not in wss_telemetry: the telemetry library owns
// the model-agnostic struct, the model library owns the numbers.

#include "perfmodel/cs1_model.hpp"
#include "perfmodel/stencilfe_model.hpp"
#include "telemetry/timeseries.hpp"

namespace wss::perfmodel {

/// CS1Model per-iteration prediction for one ProgPhase of the BiCGStab
/// fabric program (the Section V cost accounting: 2 SpMVs, 4 local dots,
/// 6 AXPYs, 4 all-reduces and the fixed control overhead per iteration).
/// Shared by perf_report.cpp and bicgstab_expectations so the offline
/// report and the live gate can never disagree.
[[nodiscard]] double model_phase_cycles(const CS1Model& model,
                                        wse::ProgPhase phase, int z,
                                        int fabric_x, int fabric_y);

/// Health expectations for the BiCGStab fabric program on a
/// `fabric_x` x `fabric_y` fabric with Z=`z` unknowns per tile. Control is
/// left ungated: its fixed per-iteration overhead is too small a
/// denominator for a robust relative gate.
[[nodiscard]] telemetry::HealthExpectations bicgstab_expectations(
    int z, int fabric_x, int fabric_y, const CS1Model& model = CS1Model{});

/// Health expectations for a compiled stencilfe program: the halo
/// exchange (tagged ProgPhase::SpMV by the compiler) is gated with the
/// exact per-generation projection. Compute/commit are left ungated — the
/// projection lumps the FMAC folds (Axpy) and the commit (Control) into
/// one number, so a per-phase gate would mis-attribute.
[[nodiscard]] telemetry::HealthExpectations stencilfe_expectations(
    const stencilfe::TransitionFn& fn, int nx, int ny);

} // namespace wss::perfmodel
