#pragma once

// Machine balance (Fig. 1, after McCalpin): peak flops per word of memory
// bandwidth and per word of interconnect bandwidth for representative HPC
// systems, and where wafer-scale integration lands. The paper's point: the
// CS-1 can move three bytes to/from memory per flop — orders of magnitude
// below the hundreds-of-flops-per-word balance of conventional systems.

#include <string>
#include <vector>

namespace wss::perfmodel {

struct MachineBalance {
  std::string name;
  double peak_flops = 0.0;        ///< per node (or per wafer)
  double memory_bw_bytes = 0.0;   ///< per node
  double network_bw_bytes = 0.0;  ///< injection per node
  double word_bytes = 8.0;        ///< native word size used for the ratio

  [[nodiscard]] double flops_per_memory_word() const {
    return peak_flops / (memory_bw_bytes / word_bytes);
  }
  [[nodiscard]] double flops_per_network_word() const {
    return peak_flops / (network_bw_bytes / word_bytes);
  }
  [[nodiscard]] double bytes_per_flop_memory() const {
    return memory_bw_bytes / peak_flops;
  }
};

/// The Fig. 1 comparison set: a 2016-era Xeon node, a GPU node, and the
/// CS-1 (per-wafer figures; fp16 words).
std::vector<MachineBalance> balance_survey();

/// The CS-1 entry alone (mixed-precision peak, fp16 words).
MachineBalance cs1_balance();

} // namespace wss::perfmodel
