#include "perfmodel/cs1_model.hpp"

namespace wss::perfmodel {

double CS1Model::spmv_cycles(int z, Mode mode) const {
  // Measured on the cycle simulator: 12 fp16 element-operations per point
  // (6 multiplies into FIFOs, 5 FIFO adds + 1 diagonal add) at SIMD-4 plus
  // the broadcast send (2 packed fp16 words per link-cycle) plus queueing
  // and round-robin arbitration losses come to 4.67 cycles per z point.
  // fp32 halves both the SIMD width and the link packing: ~2x.
  const double per_z = mode == Mode::Mixed ? 4.67 : 9.34;
  return per_z * z + overheads_.spmv;
}

double CS1Model::dot_local_cycles(int z, Mode mode) const {
  // Mixed: the hardware dot instruction retires 2 FMACs/cycle.
  // fp32: 1 FMAC/cycle. (+1: instruction start, per the simulator.)
  return (mode == Mode::Mixed ? z / 2.0 : static_cast<double>(z)) + 1.0;
}

double CS1Model::axpy_cycles(int z, Mode mode) const {
  // SIMD-4 fp16 FMAC; fp32 runs 1 FMAC/cycle.
  return (mode == Mode::Mixed ? z / 4.0 : static_cast<double>(z)) + 1.0;
}

double CS1Model::allreduce_cycles(int fabric_x, int fabric_y) const {
  // Fig. 6: reduce along rows (X/2 words into each center core at one per
  // cycle), then columns, then broadcast back: ~diameter total plus a
  // small constant — the simulator measures diameter + 11 exactly, i.e.
  // the paper's "about 10% greater than the diameter" at moderate sizes.
  const double diameter = static_cast<double>(fabric_x + fabric_y - 2);
  return overheads_.diameter_factor * diameter + overheads_.allreduce;
}

double CS1Model::allreduce_seconds(int fabric_x, int fabric_y) const {
  return allreduce_cycles(fabric_x, fabric_y) / arch_.clock_hz;
}

double CS1Model::iteration_cycles(Grid3 mesh, Mode mode) const {
  const int z = mesh.nz;
  const double ar = allreduce_cycles(mesh.nx, mesh.ny);
  return 2.0 * spmv_cycles(z, mode) + 4.0 * dot_local_cycles(z, mode) +
         6.0 * axpy_cycles(z, mode) + 4.0 * ar + overheads_.iteration;
}

double CS1Model::iteration_seconds(Grid3 mesh, Mode mode) const {
  return iteration_cycles(mesh, mode) / arch_.clock_hz;
}

double CS1Model::achieved_flops(Grid3 mesh, Mode mode) const {
  const OpsPerPoint ops;
  return static_cast<double>(ops.total()) * static_cast<double>(mesh.size()) /
         iteration_seconds(mesh, mode);
}

double CS1Model::flops_per_watt(Grid3 mesh, Mode mode) const {
  return achieved_flops(mesh, mode) / (arch_.system_power_kw * 1e3);
}

double CS1Model::peak_fraction(Grid3 mesh, Mode mode) const {
  // The paper's "about one third of the machine's peak" compares against
  // the full wafer's fp16 peak (380k cores x 8 ops/cycle), not just the
  // active rectangle, so we do the same.
  const double peak = mode == Mode::Mixed
                          ? arch_.peak_fp16_flops(arch_.marketed_cores)
                          : static_cast<double>(arch_.marketed_cores) * 2.0 *
                                arch_.clock_hz;
  return achieved_flops(mesh, mode) / peak;
}

} // namespace wss::perfmodel
