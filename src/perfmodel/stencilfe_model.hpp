#pragma once

// Analytic cycle projection for the generic stencil front-end, validated
// the same way the CS-1 model was: the projection is printed next to the
// measured simulator cycles in every stencilfe bench, and the regression
// baselines gate both (the measurement exactly, the projection error
// loosely). The model walks the same straight-line program the compiler
// emits — per-step dispatch, link-rate sends, arrival-gated receives,
// wrap-lane latency — so it is a deterministic function of the
// TransitionFn and grid shape.

#include "stencilfe/transition.hpp"

namespace wss::perfmodel {

struct StencilFeProjection {
  double exchange_cycles = 0.0; ///< halo rounds incl. wrap-lane latency
  double compute_cycles = 0.0;  ///< scalar seeding + FMAC folds + commit
  [[nodiscard]] double total() const {
    return exchange_cycles + compute_cycles;
  }
};

/// Projected cycles for one generation of `fn` on an nx*ny grid.
[[nodiscard]] StencilFeProjection project_stencilfe_generation(
    const stencilfe::TransitionFn& fn, int nx, int ny);

} // namespace wss::perfmodel
