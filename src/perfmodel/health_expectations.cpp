// Expectation builders for the runtime health engine: the analytic models
// rendered as per-tile per-iteration cycle targets (docs/HEALTH.md).

#include "perfmodel/health_expectations.hpp"

namespace wss::perfmodel {

double model_phase_cycles(const CS1Model& model, wse::ProgPhase phase, int z,
                          int fabric_x, int fabric_y) {
  switch (phase) {
    case wse::ProgPhase::SpMV:
      return 2.0 * model.spmv_cycles(z);
    case wse::ProgPhase::Dot:
      return 4.0 * model.dot_local_cycles(z);
    case wse::ProgPhase::Axpy:
      return 6.0 * model.axpy_cycles(z);
    case wse::ProgPhase::AllReduce:
      return 4.0 * model.allreduce_cycles(fabric_x, fabric_y);
    case wse::ProgPhase::Control:
      return model.overheads().iteration;
  }
  return 0.0;
}

telemetry::HealthExpectations bicgstab_expectations(int z, int fabric_x,
                                                    int fabric_y,
                                                    const CS1Model& model) {
  telemetry::HealthExpectations e;
  e.model = "cs1";
  const wse::ProgPhase gated[] = {wse::ProgPhase::SpMV, wse::ProgPhase::Dot,
                                  wse::ProgPhase::Axpy,
                                  wse::ProgPhase::AllReduce};
  for (const wse::ProgPhase p : gated) {
    e.phase_cycles[static_cast<std::size_t>(p)] =
        model_phase_cycles(model, p, z, fabric_x, fabric_y);
  }
  return e;
}

telemetry::HealthExpectations stencilfe_expectations(
    const stencilfe::TransitionFn& fn, int nx, int ny) {
  telemetry::HealthExpectations e;
  e.model = "stencilfe";
  const StencilFeProjection proj = project_stencilfe_generation(fn, nx, ny);
  e.phase_cycles[static_cast<std::size_t>(wse::ProgPhase::SpMV)] =
      proj.exchange_cycles;
  return e;
}

} // namespace wss::perfmodel
