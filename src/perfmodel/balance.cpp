#include "perfmodel/balance.hpp"

namespace wss::perfmodel {

MachineBalance cs1_balance() {
  // Per wafer: 380k cores, 8 fp16 flops/cycle peak at 0.875 GHz; memory
  // moves 24 bytes/cycle/core (16 read + 8 write), i.e. 3 bytes per flop;
  // the fabric injects 16 bytes/cycle/core. Words are fp16 (2 bytes).
  MachineBalance cs1;
  cs1.name = "Cerebras CS-1 (wafer)";
  const double cores = 380000.0;
  const double clock = 0.875e9;
  cs1.peak_flops = cores * 8.0 * clock;
  cs1.memory_bw_bytes = cores * 24.0 * clock;
  cs1.network_bw_bytes = cores * 16.0 * clock;
  cs1.word_bytes = 2.0;
  return cs1;
}

std::vector<MachineBalance> balance_survey() {
  std::vector<MachineBalance> v;

  // Dual Xeon Gold 6148 node (the Joule building block): 2 x 20 cores x
  // 2.4 GHz x 32 fp64 flops/cycle (AVX-512 FMA); 2 x ~128 GB/s DDR4;
  // Omni-Path 100 Gb/s.
  MachineBalance xeon;
  xeon.name = "Dual Xeon 6148 node (Joule)";
  xeon.peak_flops = 2.0 * 20.0 * 2.4e9 * 32.0;
  xeon.memory_bw_bytes = 2.0 * 128.0e9;
  xeon.network_bw_bytes = 12.5e9;
  xeon.word_bytes = 8.0;
  v.push_back(xeon);

  // V100-class GPU node: 7.8 TF fp64, 900 GB/s HBM2, 4x EDR IB (~50 GB/s).
  MachineBalance gpu;
  gpu.name = "V100 GPU node";
  gpu.peak_flops = 7.8e12;
  gpu.memory_bw_bytes = 900.0e9;
  gpu.network_bw_bytes = 50.0e9;
  gpu.word_bytes = 8.0;
  v.push_back(gpu);

  v.push_back(cs1_balance());
  return v;
}

} // namespace wss::perfmodel
