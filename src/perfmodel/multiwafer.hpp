#pragma once

// Section VIII-B's forward-looking direction: "Solutions involving the
// clustering, with sufficient bandwidth, of several wafer-scale systems is
// certainly a possibility." A model of N CS-1-class wafers in a chain,
// splitting the mesh's Z extent: each wafer holds a 600x595x(Z/N) slab,
// adjacent wafers exchange one X*Y fp16 plane per SpMV (two per BiCGStab
// iteration), and the four AllReduces each pay an inter-wafer hop tree on
// top of the on-wafer reduction.

#include <algorithm>
#include <utility>

#include "mesh/grid.hpp"
#include "perfmodel/cs1_model.hpp"

namespace wss::perfmodel {

struct MultiWaferParams {
  int wafers = 2;
  /// Aggregate bandwidth of the wafer-to-wafer link (bytes/s). The paper
  /// asks only for "sufficient bandwidth"; 150 GB/s is a plausible
  /// multi-link aggregate of the era.
  double link_bandwidth = 150.0e9;
  double link_latency = 0.3e-6; ///< per inter-wafer hop (cabled SerDes)
};

struct MultiWaferIteration {
  double compute_s = 0.0;    ///< the slowest wafer's on-wafer iteration
  double halo_s = 0.0;       ///< inter-wafer plane exchanges (2 per iter)
  double allreduce_extra_s = 0.0; ///< inter-wafer reduction tree overhead
  /// The plane exchange overlaps with the Z-interior compute (only the
  /// boundary plane's stencil terms need it), so it only costs time when
  /// it outlasts the compute.
  [[nodiscard]] double total() const {
    return std::max(compute_s, halo_s) + allreduce_extra_s;
  }
};

class MultiWaferModel {
public:
  MultiWaferModel(CS1Model cs1, MultiWaferParams params)
      : cs1_(std::move(cs1)), p_(params) {}

  /// Can the cluster hold the mesh? (fabric bound per wafer, Z split.)
  [[nodiscard]] bool fits(Grid3 mesh) const;

  /// Time per BiCGStab iteration for a mesh whose Z is split over the
  /// wafers (weak scaling adds capacity, strong scaling shrinks Z/N).
  [[nodiscard]] MultiWaferIteration iteration_time(Grid3 mesh) const;

  /// Largest Z (total, across wafers) for the standard fabric mapping.
  [[nodiscard]] int max_total_z() const;

  [[nodiscard]] const MultiWaferParams& params() const { return p_; }
  [[nodiscard]] const CS1Model& cs1() const { return cs1_; }

private:
  CS1Model cs1_;
  MultiWaferParams p_;
};

} // namespace wss::perfmodel
