#include "perfmodel/multiwafer.hpp"

#include <cmath>

namespace wss::perfmodel {

namespace {

/// Deepest Z pencil per tile under the 10-word working set (mirrors
/// wsekernels::max_pencil_z without a dependency cycle).
int max_pencil_z(const wse::CS1Params& arch) {
  return (arch.tile_memory_bytes - 10 * 20) / 20;
}

} // namespace

bool MultiWaferModel::fits(Grid3 mesh) const {
  const auto& arch = cs1_.arch();
  if (mesh.nx > arch.fabric_x || mesh.ny > arch.fabric_y) return false;
  const int z_per_wafer = (mesh.nz + p_.wafers - 1) / p_.wafers;
  return z_per_wafer <= max_pencil_z(arch);
}

MultiWaferIteration MultiWaferModel::iteration_time(Grid3 mesh) const {
  MultiWaferIteration t;
  const int z_per_wafer = (mesh.nz + p_.wafers - 1) / p_.wafers;
  const Grid3 slab(mesh.nx, mesh.ny, z_per_wafer);
  t.compute_s = cs1_.iteration_seconds(slab);

  if (p_.wafers > 1) {
    // Two SpMVs per iteration; each needs the neighboring wafer's boundary
    // plane of the iterate: X*Y fp16 values per face, both directions
    // overlapped on a full-duplex link.
    const double plane_bytes =
        2.0 * static_cast<double>(mesh.nx) * static_cast<double>(mesh.ny);
    t.halo_s = 2.0 * (plane_bytes / p_.link_bandwidth + p_.link_latency);

    // Each of the four AllReduces adds an inter-wafer binary tree of
    // latency hops (bandwidth is negligible for one scalar).
    const double stages = std::ceil(std::log2(static_cast<double>(p_.wafers)));
    t.allreduce_extra_s = 4.0 * 2.0 * stages * p_.link_latency;
  }
  return t;
}

int MultiWaferModel::max_total_z() const {
  return p_.wafers * max_pencil_z(cs1_.arch());
}

} // namespace wss::perfmodel
