#pragma once

// Section VI cost model: cycles per meshpoint for the SIMPLE algorithm's
// steps outside the linear solver (Table II), composed with the CS-1
// BiCGStab model to project CFD throughput — the paper's 80-125 timesteps
// per second at 600^3 with 15 SIMPLE iterations per step, placing the CS-1
// "above 200 times faster" than a 16384-core Joule partition.

#include "mesh/grid.hpp"
#include "perfmodel/cs1_model.hpp"
#include "perfmodel/cluster_model.hpp"

namespace wss::perfmodel {

/// One row of Table II: cycles per meshpoint, as [lo, hi] ranges. The
/// published Total column differs from the component sum by +-2 in two
/// rows (an inconsistency in the paper's own table), so both are kept.
struct SimpleStepCost {
  const char* name = "";
  int merge_lo = 0, merge_hi = 0;
  int flop_lo = 0, flop_hi = 0;
  int sqrt_lo = 0, sqrt_hi = 0;
  int div_lo = 0, div_hi = 0;
  int transport_lo = 0, transport_hi = 0;
  int published_total_lo = 0, published_total_hi = 0;

  [[nodiscard]] int total_lo() const {
    return merge_lo + flop_lo + sqrt_lo + div_lo + transport_lo;
  }
  [[nodiscard]] int total_hi() const {
    return merge_hi + flop_hi + sqrt_hi + div_hi + transport_hi;
  }
};

/// Table II as published.
struct SimpleCycleTable {
  SimpleStepCost initialization{"Initialization", 2,  9,  35, 47, 0, 0, 0, 0,
                                8,  8,  45, 64};
  SimpleStepCost momentum{"Momentum", 25, 153, 18, 25, 13, 13, 15, 16,
                          6,  6,  79, 213};
  SimpleStepCost continuity{"Continuity", 8, 45, 13, 18, 0, 0, 15, 16,
                            2, 2, 37, 81};
  SimpleStepCost field_update{"Field Update", 0, 0, 3, 5, 0, 0, 0, 0,
                              1, 1, 4, 6};
};

struct SimpleRunParams {
  int simple_iterations = 15;    ///< per time step ("ranges 5-20")
  int momentum_solver_iters = 5; ///< BiCGStab cap for transport equations
  int continuity_solver_iters = 20;
};

struct TimestepProjection {
  double cycles_per_core_lo = 0.0;
  double cycles_per_core_hi = 0.0;
  double seconds_lo = 0.0;
  double seconds_hi = 0.0;
  double steps_per_second_lo = 0.0;
  double steps_per_second_hi = 0.0;
  double speedup_vs_joule_16k = 0.0; ///< using the mid-range estimate
};

class SimpleModel {
public:
  SimpleModel(CS1Model cs1, JouleModel joule)
      : cs1_(std::move(cs1)), joule_(std::move(joule)) {}

  /// Project wall time per SIMPLE time step for `mesh` on the CS-1.
  [[nodiscard]] TimestepProjection project(Grid3 mesh,
                                           SimpleRunParams run = {}) const;

  [[nodiscard]] const SimpleCycleTable& table() const { return table_; }
  [[nodiscard]] const CS1Model& cs1() const { return cs1_; }

private:
  CS1Model cs1_;
  JouleModel joule_;
  SimpleCycleTable table_;
};

} // namespace wss::perfmodel
