#include "perfmodel/simple_model.hpp"

namespace wss::perfmodel {

TimestepProjection SimpleModel::project(Grid3 mesh,
                                        SimpleRunParams run) const {
  const SimpleCycleTable& t = table_;
  const double z = static_cast<double>(mesh.nz);

  // Matrix-formation work per meshpoint per SIMPLE iteration (Table II):
  // three momentum equations, one continuity, one field update.
  const double form_lo =
      3.0 * t.momentum.total_lo() + t.continuity.total_lo() +
      t.field_update.total_lo();
  const double form_hi =
      3.0 * t.momentum.total_hi() + t.continuity.total_hi() +
      t.field_update.total_hi();

  // Linear-solver work: per BiCGStab iteration the local compute is
  // 11.5 cycles per meshpoint (2 SpMVs at 4/pt, 4 dots at 0.5/pt, 6 AXPYs
  // at 0.25/pt); the residual-calculation reductions overlap with other
  // computation (the paper's assumption), so the blocking AllReduce cost
  // only enters the continuity solve's convergence checks amortized in the
  // same term.
  const double solver_iters_per_simple =
      3.0 * run.momentum_solver_iters + run.continuity_solver_iters;
  const double solver_cycles_per_point = 11.5 * solver_iters_per_simple;

  const double per_point_lo =
      t.initialization.total_lo() +
      run.simple_iterations * (form_lo + solver_cycles_per_point);
  const double per_point_hi =
      t.initialization.total_hi() +
      run.simple_iterations * (form_hi + solver_cycles_per_point);

  TimestepProjection p;
  p.cycles_per_core_lo = per_point_lo * z;
  p.cycles_per_core_hi = per_point_hi * z;
  const double hz = cs1_.arch().clock_hz;
  p.seconds_lo = p.cycles_per_core_lo / hz;
  p.seconds_hi = p.cycles_per_core_hi / hz;
  p.steps_per_second_lo = 1.0 / p.seconds_hi;
  p.steps_per_second_hi = 1.0 / p.seconds_lo;

  // Joule at 16384 cores runs the same algorithm: time per step is the
  // SIMPLE iteration count times the solver iterations per SIMPLE
  // iteration times the modeled BiCGStab iteration time, plus ~40% for
  // matrix formation (the paper: formation is 30-50% of the operations).
  const double joule_iter = joule_.iteration_seconds(mesh, 16384);
  const double joule_step_s =
      run.simple_iterations * solver_iters_per_simple * joule_iter * 1.4;
  const double mid = 0.5 * (p.seconds_lo + p.seconds_hi);
  p.speedup_vs_joule_16k = joule_step_s / mid;
  return p;
}

} // namespace wss::perfmodel
