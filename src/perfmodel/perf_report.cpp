#include "perfmodel/perf_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/env.hpp"
#include "perfmodel/health_expectations.hpp"
#include "telemetry/io.hpp"
#include "telemetry/json.hpp"

namespace wss::perfmodel {

// The ProgPhase -> CS1Model mapping is shared with the health engine's
// expectation builders (health_expectations.cpp), so the offline report
// and the live drift gate agree by construction.

PerfReport make_perf_report(const telemetry::Profiler& prof, int z,
                            int iterations, const CS1Model& model) {
  PerfReport r;
  r.fabric_x = prof.width();
  r.fabric_y = prof.height();
  r.z = z;
  r.iterations = iterations;

  const telemetry::PhaseCatMatrix m = prof.totals();
  const double tiles = static_cast<double>(prof.configured_tiles());
  const double denom =
      tiles * static_cast<double>(iterations > 0 ? iterations : 1);

  for (int p = 0; p < wse::kNumProgPhases; ++p) {
    std::uint64_t phase_cycles = 0;
    for (const std::uint64_t v : m[static_cast<std::size_t>(p)]) {
      phase_cycles += v;
    }
    PhaseRow row;
    row.phase = wse::to_string(static_cast<wse::ProgPhase>(p));
    row.measured_cycles =
        denom > 0.0 ? static_cast<double>(phase_cycles) / denom : 0.0;
    row.model_cycles = model_phase_cycles(
        model, static_cast<wse::ProgPhase>(p), z, r.fabric_x, r.fabric_y);
    r.measured_cycles_per_iter += row.measured_cycles;
    r.model_cycles_per_iter += row.model_cycles;
    r.phases.push_back(std::move(row));
  }

  const double clock = model.arch().clock_hz;
  r.us_per_iter = r.measured_cycles_per_iter / clock * 1e6;

  const OpsPerPoint ops;
  const double meshpoints = static_cast<double>(r.fabric_x) *
                            static_cast<double>(r.fabric_y) *
                            static_cast<double>(z);
  if (r.us_per_iter > 0.0) {
    r.achieved_flops =
        static_cast<double>(ops.total()) * meshpoints / (r.us_per_iter * 1e-6);
  }

  // Full-wafer projection: the Section V model evaluated at the paper's
  // mesh, scaled by this run's measured/model ratio — i.e. "if the same
  // relative overheads held at 600 x 595 x 1536".
  const double ratio = r.model_cycles_per_iter > 0.0
                           ? r.measured_cycles_per_iter /
                                 r.model_cycles_per_iter
                           : 1.0;
  r.wafer_us_per_iter =
      model.iteration_seconds(r.paper_mesh) * 1e6 * ratio;
  if (r.wafer_us_per_iter > 0.0) {
    r.wafer_pflops = static_cast<double>(ops.total()) *
                     static_cast<double>(r.paper_mesh.size()) /
                     (r.wafer_us_per_iter * 1e-6) / 1e15;
  }

  for (const telemetry::CriticalPath& p :
       telemetry::per_iteration_critical_paths(prof)) {
    r.critical_paths.push_back(
        {p.length_cycles(), p.tile_hops(), p.truncated});
  }
  return r;
}

std::string PerfReport::pretty() const {
  std::ostringstream os;
  char buf[200];
  os << "perf report: " << fabric_x << "x" << fabric_y << " fabric, Z=" << z
     << ", " << iterations << " iterations\n";
  std::snprintf(buf, sizeof(buf), "  %-10s %12s %12s %8s\n", "phase",
                "measured", "model", "delta");
  os << buf;
  for (const PhaseRow& p : phases) {
    std::snprintf(buf, sizeof(buf), "  %-10s %12.1f %12.1f %+7.1f%%\n",
                  p.phase.c_str(), p.measured_cycles, p.model_cycles,
                  p.delta_pct());
    os << buf;
  }
  std::snprintf(buf, sizeof(buf), "  %-10s %12.1f %12.1f  cycles/iter\n",
                "total", measured_cycles_per_iter, model_cycles_per_iter);
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "  measured: %.3f us/iter, %.3f TFLOPS on this fabric\n",
                us_per_iter, achieved_flops / 1e12);
  os << buf;
  std::snprintf(
      buf, sizeof(buf),
      "  wafer projection (%dx%dx%d): %.1f us/iter, %.2f PFLOPS  "
      "[paper: %.1f us, %.2f PFLOPS]\n",
      paper_mesh.nx, paper_mesh.ny, paper_mesh.nz, wafer_us_per_iter,
      wafer_pflops, paper_us_per_iter, paper_pflops);
  os << buf;
  if (!critical_paths.empty()) {
    os << "  critical path per iteration:";
    for (const PathSummary& p : critical_paths) {
      std::snprintf(buf, sizeof(buf), " %llu cyc/%zu hops%s",
                    static_cast<unsigned long long>(p.length_cycles),
                    p.tile_hops, p.truncated ? "(trunc)" : "");
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

std::string PerfReport::to_json() const {
  telemetry::json::Writer w;
  w.begin_object();
  w.key("fabric_x").value(fabric_x);
  w.key("fabric_y").value(fabric_y);
  w.key("z").value(z);
  w.key("iterations").value(iterations);
  w.key("phases").begin_array();
  for (const PhaseRow& p : phases) {
    w.begin_object();
    w.key("phase").value(p.phase);
    w.key("measured_cycles").value(p.measured_cycles);
    w.key("model_cycles").value(p.model_cycles);
    w.key("delta_pct").value(p.delta_pct());
    w.end_object();
  }
  w.end_array();
  w.key("measured_cycles_per_iter").value(measured_cycles_per_iter);
  w.key("model_cycles_per_iter").value(model_cycles_per_iter);
  w.key("us_per_iter").value(us_per_iter);
  w.key("achieved_flops").value(achieved_flops);
  w.key("paper_mesh").begin_array();
  w.value(paper_mesh.nx).value(paper_mesh.ny).value(paper_mesh.nz);
  w.end_array();
  w.key("wafer_us_per_iter").value(wafer_us_per_iter);
  w.key("wafer_pflops").value(wafer_pflops);
  w.key("paper_us_per_iter").value(paper_us_per_iter);
  w.key("paper_pflops").value(paper_pflops);
  w.key("critical_paths").begin_array();
  for (const PathSummary& p : critical_paths) {
    w.begin_object();
    w.key("length_cycles").value(static_cast<std::uint64_t>(p.length_cycles));
    w.key("tile_hops").value(static_cast<std::uint64_t>(p.tile_hops));
    w.key("truncated").value(p.truncated);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool maybe_write_prof_json(const telemetry::Profiler& prof,
                           const PerfReport* report, std::string* path_out,
                           std::string* error) {
  const char* path = env::parse_cstr("WSS_PROF_JSON");
  if (path == nullptr || path[0] == '\0') return false;
  telemetry::json::Writer w;
  w.begin_object();
  w.key("profile").raw(prof.to_json());
  if (report != nullptr) {
    w.key("perf_report").raw(report->to_json());
  }
  w.end_object();
  if (!telemetry::write_text_file(path, w.str(), error)) return false;
  if (path_out != nullptr) *path_out = path;
  return true;
}

} // namespace wss::perfmodel
