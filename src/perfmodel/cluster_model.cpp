#include "perfmodel/cluster_model.hpp"

#include <cmath>

namespace wss::perfmodel {

ClusterIterationTime JouleModel::iteration_time(Grid3 mesh, int cores) const {
  ClusterIterationTime t;
  const double points = static_cast<double>(mesh.size());
  const double sockets = static_cast<double>(cores) / p_.cores_per_socket;

  t.compute_s = points * p_.bytes_per_point_per_iter /
                (sockets * p_.effective_bw_per_socket);

  const auto comm = cluster::iteration_comm_volume(mesh, cores);
  const int ranks_per_node = p_.cores_per_socket * p_.sockets_per_node;
  const double nic_share = p_.nic_bw_per_node / ranks_per_node;
  t.halo_s = comm.halo_bytes_per_rank / nic_share +
             comm.halo_messages_per_rank * p_.message_latency;

  const double stages = std::ceil(std::log2(static_cast<double>(cores)));
  const double noise = 1.0 + static_cast<double>(cores) / p_.noise_scale_ranks;
  t.allreduce_s =
      comm.allreduces * stages * p_.allreduce_stage_latency * noise;
  return t;
}

double JouleModel::flops_per_watt(Grid3 mesh, int cores) const {
  const double ops = 48.0 * static_cast<double>(mesh.size());
  const double nodes = static_cast<double>(cores) /
                       (p_.cores_per_socket * p_.sockets_per_node);
  return ops / iteration_seconds(mesh, cores) / (nodes * p_.node_power_kw * 1e3);
}

double JouleModel::efficiency(Grid3 mesh, int cores, int base_cores) const {
  const double t_base = iteration_seconds(mesh, base_cores);
  const double t = iteration_seconds(mesh, cores);
  return (t_base * base_cores) / (t * cores);
}

} // namespace wss::perfmodel
