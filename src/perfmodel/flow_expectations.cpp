#include "perfmodel/flow_expectations.hpp"

#include "wse/route_compiler.hpp"

namespace wss::perfmodel {
namespace {

using telemetry::NetFlowExpectation;

[[nodiscard]] NetFlowExpectation expect(std::string flow, double words,
                                        bool exact) {
  NetFlowExpectation e;
  e.flow = std::move(flow);
  e.words_per_iteration = words;
  e.exact = exact;
  return e;
}

/// 1 + 2 + ... + n: total link hops of n independent flits converging on a
/// reduction column/row from distances 1..n.
[[nodiscard]] double hop_sum(int n) {
  if (n <= 0) return 0.0;
  return static_cast<double>(n) * static_cast<double>(n + 1) / 2.0;
}

/// Link words one all-reduce moves on its reduce colors (row + column +
/// quad + final legs). Every injected fp32 value rides the compiled routes
/// independently — routers forward, only the center CEs fold — so the
/// count is a pure sum of travel distances.
[[nodiscard]] double allreduce_reduce_words(int width, int height) {
  const wse::AllReduceGeometry g = wse::allreduce_geometry(width, height);
  // Row leg: every off-center tile's value travels to its nearest center
  // column; per row that is 1+..+cxl hops eastbound plus 1+..+(w-1-cxr)
  // westbound.
  const double row =
      static_cast<double>(height) *
      (hop_sum(g.cxl) + hop_sum(width - 1 - g.cxr));
  // Column leg along the two center columns.
  const double col = 2.0 * (hop_sum(g.cyt) + hop_sum(height - 1 - g.cyb));
  // Quad: one eastbound hop on each of the two center rows; final: one
  // southbound hop down the root column.
  const double quad = 2.0;
  const double fin = static_cast<double>(g.cyb - g.cyt);
  return row + col + quad + fin;
}

/// The broadcast flood is a spanning tree rooted at (cxr, cyb): every tile
/// but the root receives its copy over exactly one link.
[[nodiscard]] double allreduce_bcast_words(int width, int height) {
  return static_cast<double>(width) * static_cast<double>(height) - 1.0;
}

} // namespace

std::vector<NetFlowExpectation> stencilfe_flow_expectations(
    const stencilfe::TransitionFn& fn, int nx, int ny) {
  const double f = static_cast<double>(fn.fields);
  const double w = static_cast<double>(nx);
  const double h = static_cast<double>(ny);
  // Axis legs are single-hop: each tile with an east neighbor ships its
  // own F fields east (and symmetrically west); each tile with a south
  // neighbor ships its assembled 3F-halfword row packet south (and
  // symmetrically north). One halfword per flit per link hop.
  const double ew = f * (w - 1.0) * h;
  const double ns = 3.0 * f * (h - 1.0) * w;
  std::vector<NetFlowExpectation> out;
  out.push_back(expect("halo.E", ew, /*exact=*/true));
  out.push_back(expect("halo.W", ew, /*exact=*/true));
  out.push_back(expect("halo.S", ns, /*exact=*/true));
  out.push_back(expect("halo.N", ns, /*exact=*/true));
  if (fn.boundary == stencilfe::BoundaryPolicy::Periodic) {
    // One injector per row/column; its payload traverses the whole
    // row/column, so the wrap lane moves exactly as many words as the
    // matching interior leg.
    out.push_back(expect("wrap.E", ew, /*exact=*/true));
    out.push_back(expect("wrap.W", ew, /*exact=*/true));
    out.push_back(expect("wrap.S", ns, /*exact=*/true));
    out.push_back(expect("wrap.N", ns, /*exact=*/true));
  }
  return out;
}

std::vector<NetFlowExpectation> bicgstab_flow_expectations(int z,
                                                           int fabric_x,
                                                           int fabric_y,
                                                           bool fuse_qy_yy) {
  const double zz = static_cast<double>(z);
  const double w = static_cast<double>(fabric_x);
  const double h = static_cast<double>(fabric_y);
  // Each SpMV round: every tile broadcasts its Z-vector one hop to each
  // existing neighbor on its own tessellation color — Z(w-1)h flits
  // eastbound and the same westbound; two SpMVs per iteration.
  const double spmv_x = 2.0 * 2.0 * zz * (w - 1.0) * h;
  const double spmv_y = 2.0 * 2.0 * zz * w * (h - 1.0);
  // Four dot-product all-reduces per iteration; the fused q.y / y.y pair
  // moves one of them onto the secondary tree.
  const double primary_ops = fuse_qy_yy ? 3.0 : 4.0;
  const double secondary_ops = fuse_qy_yy ? 1.0 : 0.0;
  const double reduce = allreduce_reduce_words(fabric_x, fabric_y);
  const double bcast = allreduce_bcast_words(fabric_x, fabric_y);
  std::vector<NetFlowExpectation> out;
  out.push_back(expect("spmv.x", spmv_x, /*exact=*/false));
  out.push_back(expect("spmv.y", spmv_y, /*exact=*/false));
  out.push_back(
      expect("allreduce.reduce", primary_ops * reduce, /*exact=*/false));
  out.push_back(
      expect("allreduce.bcast", primary_ops * bcast, /*exact=*/false));
  if (fuse_qy_yy) {
    out.push_back(
        expect("allreduce2.reduce", secondary_ops * reduce, /*exact=*/false));
    out.push_back(
        expect("allreduce2.bcast", secondary_ops * bcast, /*exact=*/false));
  }
  return out;
}

} // namespace wss::perfmodel
