#pragma once

// The Section V performance model of BiCGStab on the CS-1, built bottom-up
// from the architecture (Section II) and validated against the cycle-level
// fabric simulator at small sizes, then evaluated at the paper's headline
// configuration: a 600 x 595 x 1536 mesh, mixed precision, measured at
// 28.1 us per iteration = 0.86 PFLOPS.
//
// Cycle accounting per core per iteration (mixed precision, Z pencil):
//   2 SpMVs        : each 4*Z + c_spmv   (12 fp16 element-ops/point at
//                    SIMD-4 plus the 1-word-per-cycle broadcast send)
//   4 dots         : Z/2 local cycles each (2 mixed FMACs/cycle)
//                    + a blocking AllReduce each
//   6 AXPYs        : Z/4 cycles each (SIMD-4 fp16 FMAC)
//   AllReduce      : ~1.1 * (X + Y) + c_ar  (Fig. 6; ~10% over diameter)
// The constants are calibrated once against the simulator and the paper's
// measured iteration time; they are small compared to the Z terms.

#include <cstdint>

#include "mesh/grid.hpp"
#include "wse/arch.hpp"

namespace wss::perfmodel {

/// Arithmetic mode of the solve (Table I's two columns).
enum class Mode { Mixed, Fp32 };

/// Table I: operations per meshpoint per BiCGStab iteration.
struct OpsPerPoint {
  int matvec_add = 12, matvec_mul = 12;
  int dot_add = 4, dot_mul = 4;
  int axpy_add = 6, axpy_mul = 6;

  [[nodiscard]] int total() const {
    return matvec_add + matvec_mul + dot_add + dot_mul + axpy_add + axpy_mul;
  }
  /// In mixed mode the dot adds are fp32 and everything else fp16.
  [[nodiscard]] int fp32_ops(Mode m) const {
    return m == Mode::Mixed ? dot_add : total();
  }
  [[nodiscard]] int fp16_ops(Mode m) const {
    return m == Mode::Mixed ? total() - dot_add : 0;
  }
};

class CS1Model {
public:
  explicit CS1Model(wse::CS1Params arch = {}) : arch_(arch) {}

  // --- kernel-level cycle counts (per core) ---
  [[nodiscard]] double spmv_cycles(int z, Mode mode = Mode::Mixed) const;
  [[nodiscard]] double dot_local_cycles(int z, Mode mode = Mode::Mixed) const;
  [[nodiscard]] double axpy_cycles(int z, Mode mode = Mode::Mixed) const;
  [[nodiscard]] double allreduce_cycles(int fabric_x, int fabric_y) const;
  [[nodiscard]] double allreduce_seconds(int fabric_x, int fabric_y) const;

  // --- per-iteration model ---
  [[nodiscard]] double iteration_cycles(Grid3 mesh,
                                        Mode mode = Mode::Mixed) const;
  [[nodiscard]] double iteration_seconds(Grid3 mesh,
                                         Mode mode = Mode::Mixed) const;

  /// Achieved flops/s: Table I's 44 ops per point over the iteration time.
  [[nodiscard]] double achieved_flops(Grid3 mesh,
                                      Mode mode = Mode::Mixed) const;
  /// Fraction of the machine's peak in that mode over the active cores.
  [[nodiscard]] double peak_fraction(Grid3 mesh,
                                     Mode mode = Mode::Mixed) const;

  /// Achieved flops per Watt at the system's 20 kW (Section I: "The
  /// achieved performance per Watt ... beyond what has been reported for
  /// conventional machines on comparable problems").
  [[nodiscard]] double flops_per_watt(Grid3 mesh,
                                      Mode mode = Mode::Mixed) const;

  [[nodiscard]] const wse::CS1Params& arch() const { return arch_; }

  /// Calibration constants (cycles), exposed for the validation bench.
  struct Overheads {
    double spmv = 6.0;        ///< thread launch + barrier-tree drain
    double iteration = 20.0;  ///< task hand-offs between kernels
    double allreduce = 11.0;  ///< task starts + the 4:1 and injection hops
    double diameter_factor = 1.0; ///< simulator-measured slope
  };
  [[nodiscard]] const Overheads& overheads() const { return overheads_; }
  void set_overheads(const Overheads& o) { overheads_ = o; }

private:
  wse::CS1Params arch_;
  Overheads overheads_{};
};

} // namespace wss::perfmodel
