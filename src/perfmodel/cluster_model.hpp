#pragma once

// Strong-scaling cost model of BiCGStab inside MFIX on the Joule 2.0
// cluster (HPE ProLiant, dual Xeon Gold 6148, Intel Omni-Path), the
// baseline of Figs. 7 and 8. Three terms per iteration:
//
//   compute   — memory-bandwidth bound (HPCG-class arithmetic intensity):
//               points * bytes_per_point / aggregate effective STREAM rate
//   halo      — two face exchanges per iteration: per-rank surface bytes
//               over the per-rank share of the node NIC, plus per-message
//               latency
//   allreduce — four blocking collectives per iteration, log2(p) stages,
//               with a noise/imbalance factor growing with rank count (the
//               term that breaks strong scaling past ~8k cores on the
//               small mesh, as Fig. 7 shows)
//
// Parameters are calibrated to the two published anchor points for the
// 600^3 mesh: ~75 ms/iter at 1024 cores and ~6 ms/iter at 16384 cores.

#include "cluster/dist_bicgstab.hpp"
#include "mesh/grid.hpp"

namespace wss::perfmodel {

struct JouleParams {
  int cores_per_socket = 20;
  int sockets_per_node = 2;
  /// Effective per-socket memory bandwidth for MFIX-like indexed fp64
  /// stencil sweeps (a fraction of the ~100 GB/s STREAM rate).
  double effective_bw_per_socket = 25.0e9;
  /// fp64 bytes touched per meshpoint per BiCGStab iteration (matrix
  /// diagonals + vector traffic for 2 SpMVs, 4 dots, 6 AXPYs).
  double bytes_per_point_per_iter = 430.0;
  /// Omni-Path 100 Gb/s per node.
  double nic_bw_per_node = 12.5e9;
  double message_latency = 2.0e-6;
  /// Per-stage software latency of the blocking MPI_Allreduce.
  double allreduce_stage_latency = 5.0e-6;
  /// Noise/imbalance growth: stages cost (1 + ranks/noise_scale) more.
  double noise_scale_ranks = 3300.0;
  /// HPE ProLiant dual-socket node under load, including interconnect
  /// share (for the performance-per-Watt comparison).
  double node_power_kw = 0.6;
};

struct ClusterIterationTime {
  double compute_s = 0.0;
  double halo_s = 0.0;
  double allreduce_s = 0.0;
  [[nodiscard]] double total() const { return compute_s + halo_s + allreduce_s; }
};

class JouleModel {
public:
  explicit JouleModel(JouleParams p = {}) : p_(p) {}

  [[nodiscard]] ClusterIterationTime iteration_time(Grid3 mesh,
                                                    int cores) const;
  [[nodiscard]] double iteration_seconds(Grid3 mesh, int cores) const {
    return iteration_time(mesh, cores).total();
  }

  /// Parallel efficiency relative to the smallest published configuration.
  [[nodiscard]] double efficiency(Grid3 mesh, int cores,
                                  int base_cores = 1024) const;

  /// Achieved fp64 flops per Watt for the BiCGStab iteration (48 fp64 ops
  /// per meshpoint: two 7-diagonal matvecs, four dots, six AXPYs).
  [[nodiscard]] double flops_per_watt(Grid3 mesh, int cores) const;

  [[nodiscard]] const JouleParams& params() const { return p_; }

private:
  JouleParams p_;
};

} // namespace wss::perfmodel
