#pragma once

// Per-flow traffic projections for the network observatory
// (docs/NETWORK.md): builders that turn the compiled route geometry into
// telemetry::NetFlowExpectation rows — expected link words per iteration
// for each logical flow a FlowTable declares. The health engine's
// flow_bandwidth_drift rule gates the measured per-flow delivery against
// these, mirroring how health_expectations.hpp gates cycle attribution.
//
// Two precision tiers, matching the flows themselves:
//   exact    stencilfe halo/wrap legs — the front-end moves a fixed,
//            data-independent word count every generation, so the
//            projection is a closed-form count, not a model.
//   anchored BiCGStab flows — iteration boundaries blur (the init dot,
//            the warmup SpMV) and the two reduction trees interleave, so
//            the per-iteration figures are steady-state anchors gated
//            with the normal drift tolerance rather than equalities.

#include <vector>

#include "stencilfe/transition.hpp"
#include "telemetry/timeseries.hpp"

namespace wss::perfmodel {

/// Exact per-generation word counts for a compiled stencilfe program on an
/// `nx` x `ny` fabric (one cell per tile): the parity halo legs and — for
/// BoundaryPolicy::Periodic — the dedicated wrap lanes. Flow names match
/// wse::stencilfe_flow_table().
[[nodiscard]] std::vector<telemetry::NetFlowExpectation>
stencilfe_flow_expectations(const stencilfe::TransitionFn& fn, int nx,
                            int ny);

/// Steady-state per-iteration word anchors for the BiCGStab fabric program
/// on a `fabric_x` x `fabric_y` fabric with Z=`z` unknowns per tile: two
/// SpMV broadcast rounds plus four all-reduces per iteration — all on the
/// primary tree, unless `fuse_qy_yy` routes one of them down the secondary
/// (BicgstabProgramOptions::fuse_qy_yy). Flow names match
/// wse::bicgstab_flow_table(); rows are emitted only for flows that carry
/// iteration-proportional traffic, so the secondary tree is left ungated
/// in the unfused layout and control is always ungated.
[[nodiscard]] std::vector<telemetry::NetFlowExpectation>
bicgstab_flow_expectations(int z, int fabric_x, int fabric_y,
                           bool fuse_qy_yy = false);

} // namespace wss::perfmodel
