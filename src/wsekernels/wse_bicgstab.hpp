#pragma once

// Tier-2 "numerics-faithful" WSE-mapped BiCGStab: executes the exact
// arithmetic the wafer performs — fp16 storage and vector arithmetic with
// FMAC rounding, per-tile mixed (hp multiply / sp accumulate) local dot
// products, and the Fig. 6 tree order for the fp32 AllReduce — without
// simulating cycles, so it scales to the Fig. 9 mesh (100x400x100) and
// beyond. The cycle-level simulator (tier 1) validates that the dataflow
// programs compute the same results at small sizes; this layer produces
// the paper's accuracy results at full problem sizes.

#include <vector>

#include "mesh/field.hpp"
#include "solver/bicgstab.hpp"
#include "stencil/stencil7.hpp"

namespace wss::wsekernels {

/// Reduce one fp32 partial per tile of an X x Y fabric in the Fig. 6 tree
/// order: half-rows into the center column pair (accumulated in order of
/// arrival, nearest first), half-columns into the center quad, 4:1 onto the
/// root. Returns the value the root broadcasts.
float wse_allreduce_tree(const std::vector<float>& partials, int fabric_x,
                         int fabric_y);

/// u = A*v in the wafer's summation structure: the z-minus product
/// initializes the result, then the five streamed terms accumulate in the
/// sumtask order of Listing 1 (xp, xm, zp, yp, ym) followed by the
/// main-diagonal add, every operation rounded to fp16.
void wse_spmv(const Stencil7<fp16_t>& a, const Field3<fp16_t>& v,
              Field3<fp16_t>& u);

/// Global inner product as the wafer computes it: per-tile local dots in
/// mixed precision over the Z pencil, then the fp32 tree AllReduce.
float wse_dot(const Field3<fp16_t>& a, const Field3<fp16_t>& b);

/// Memory footprint of the BiCGStab working set on one tile, in bytes:
/// 6 matrix diagonals + 4 iteration vectors of Z fp16 words each — the
/// paper's "10 Z words per core" (about 31 KB of 48 KB at Z = 1536).
struct TileMemoryBudget {
  int matrix_bytes = 0;
  int vector_bytes = 0;
  int fifo_bytes = 0;
  int total_bytes = 0;
  bool fits = false;
};
TileMemoryBudget bicgstab_tile_memory(int z, int fifo_depth = 20,
                                      int tile_capacity = 48 * 1024);

/// WSE-mapped BiCGStab solver over an X x Y fabric with Z-pencils.
class WseBicgstabSolver {
public:
  /// `a` must be diagonal-preconditioned (unit diagonal).
  explicit WseBicgstabSolver(const Stencil7<fp16_t>& a);

  SolveResult solve(const Field3<fp16_t>& b, Field3<fp16_t>& x,
                    const SolveControls& controls) const;

  [[nodiscard]] const TileMemoryBudget& memory_budget() const {
    return memory_;
  }

private:
  const Stencil7<fp16_t>* a_;
  TileMemoryBudget memory_;
};

} // namespace wss::wsekernels
