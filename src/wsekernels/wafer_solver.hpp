#pragma once

// The library's front door: hand it the fp64 system your application
// assembled (as MFIX would), and it performs the whole paper pipeline —
// capacity check against the wafer, diagonal preconditioning, narrowing to
// fp16 tile storage, the mixed-precision WSE-mapped BiCGStab solve, and a
// performance projection from the validated CS-1 model — returning the
// widened solution plus a report.

#include "mesh/field.hpp"
#include "perfmodel/cs1_model.hpp"
#include "solver/bicgstab.hpp"
#include "stencil/stencil7.hpp"
#include "wsekernels/memory_model.hpp"

namespace wss::wsekernels {

struct WaferSolveOptions {
  SolveControls controls{.max_iterations = 50, .tolerance = 1e-2,
                         .stagnation_window = 6, .stagnation_factor = 0.99};
  wse::CS1Params arch{};
  /// Refuse meshes that do not fit the wafer (fabric extent or tile
  /// memory); set false to solve anyway (e.g. for studies on a laptop).
  bool enforce_capacity = true;
};

struct WaferSolveReport {
  SolveResult solve;
  MeshFit fit;
  Field3<double> x; ///< solution widened to fp64
  /// True fp64 relative residual of the returned solution against the
  /// original (pre-preconditioning) system.
  double true_relative_residual = 0.0;
  /// Projections from the cycle-validated model for this mesh on the CS-1.
  double modeled_iteration_seconds = 0.0;
  double modeled_wall_seconds = 0.0; ///< iterations actually used x above
  double modeled_flops = 0.0;
};

class WaferSolver {
public:
  /// Takes the application's system in fp64. The matrix is copied and
  /// Jacobi-preconditioned internally; the caller's data is not modified.
  explicit WaferSolver(const Stencil7<double>& a, WaferSolveOptions options = {});

  /// Solve A x = b from a zero initial guess.
  [[nodiscard]] WaferSolveReport solve(const Field3<double>& b) const;

  [[nodiscard]] const MeshFit& fit() const { return fit_; }

private:
  Stencil7<double> a64_;          ///< preconditioned, fp64 (for residuals)
  Field3<double> inv_diag_;       ///< the preconditioner (for the rhs)
  Stencil7<fp16_t> a16_;          ///< what tile SRAM would hold
  WaferSolveOptions options_;
  MeshFit fit_;
  perfmodel::CS1Model model_;
};

} // namespace wss::wsekernels
