#include "wsekernels/wafer_solver.hpp"

#include <cmath>
#include <stdexcept>

#include "solver/stencil_operator.hpp"
#include "wsekernels/wse_bicgstab.hpp"

namespace wss::wsekernels {

WaferSolver::WaferSolver(const Stencil7<double>& a, WaferSolveOptions options)
    : a64_(a), inv_diag_(a.grid), options_(options),
      fit_(check_mesh_fit(a.grid, options.arch)),
      model_(options.arch) {
  if (options_.enforce_capacity && !fit_.fits()) {
    throw std::invalid_argument(
        "mesh does not fit the wafer (fabric extent or 48 KB/tile); see "
        "WaferSolveOptions::enforce_capacity");
  }
  // Record the preconditioner, then scale the copy to a unit diagonal.
  for (std::size_t i = 0; i < a64_.num_points(); ++i) {
    inv_diag_[i] = 1.0 / a64_.diag[i];
  }
  Field3<double> dummy_rhs(a.grid, 0.0);
  (void)precondition_jacobi(a64_, dummy_rhs);
  a16_ = convert_stencil<fp16_t>(a64_);
}

WaferSolveReport WaferSolver::solve(const Field3<double>& b) const {
  if (!(b.grid() == a64_.grid)) {
    throw std::invalid_argument("rhs grid does not match the matrix");
  }
  WaferSolveReport report;
  report.fit = fit_;

  // Precondition and narrow the rhs.
  Field3<fp16_t> b16(b.grid());
  for (std::size_t i = 0; i < b.size(); ++i) {
    b16[i] = fp16_t(b[i] * inv_diag_[i]);
  }

  WseBicgstabSolver solver(a16_);
  Field3<fp16_t> x16(b.grid(), fp16_t(0.0));
  report.solve = solver.solve(b16, x16, options_.controls);

  report.x = convert_field<double>(x16);

  // True residual against the preconditioned fp64 system (the scaling by
  // the diagonal makes this identical to the unpreconditioned relative
  // residual in the D^{-1}-weighted norm the solver itself sees).
  Stencil7Operator<double> op(a64_);
  std::vector<double> xv(report.x.begin(), report.x.end());
  std::vector<double> bv(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) bv[i] = b[i] * inv_diag_[i];
  report.true_relative_residual = true_relative_residual<double>(
      op, std::span<const double>(bv), std::span<const double>(xv));

  report.modeled_iteration_seconds = model_.iteration_seconds(b.grid());
  report.modeled_wall_seconds =
      report.modeled_iteration_seconds * report.solve.iterations;
  report.modeled_flops = model_.achieved_flops(b.grid());
  return report;
}

} // namespace wss::wsekernels
