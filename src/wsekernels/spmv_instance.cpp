#include "wsekernels/spmv_instance.hpp"

#include "wse/route_compiler.hpp"

namespace wss::wsekernels {

using namespace wse;

TaskId append_spmv_instance(TileProgram& prog, MemAllocator& mem,
                            const SpmvBuffers& buffers, int z, int tx,
                            int ty, int fabric_x, int fabric_y,
                            const SpmvInstanceOptions& options,
                            TaskId on_complete) {
  const bool has_xp = tx + 1 < fabric_x;
  const bool has_xm = tx > 0;
  const bool has_yp = ty + 1 < fabric_y;
  const bool has_ym = ty > 0;
  const int n_x_streams = (has_xp ? 1 : 0) + (has_xm ? 1 : 0);
  const int n_y_streams = (has_yp ? 1 : 0) + (has_ym ? 1 : 0);

  // --- tensor descriptors ---
  const int t_send_src =
      prog.add_tensor({buffers.v + 1, z, 1, DType::F16, 0});
  const int t_zm_src = prog.add_tensor({buffers.v, z, 1, DType::F16, 0});
  const int t_zm_coef =
      prog.add_tensor({buffers.coef[5], z, 1, DType::F16, 0});
  const int t_zm_dst = prog.add_tensor({buffers.u + 1, z, 1, DType::F16, 0});
  const int t_coef[5] = {
      prog.add_tensor({buffers.coef[0], z, 1, DType::F16, 0}),
      prog.add_tensor({buffers.coef[1], z, 1, DType::F16, 0}),
      prog.add_tensor({buffers.coef[2], z, 1, DType::F16, 0}),
      prog.add_tensor({buffers.coef[3], z, 1, DType::F16, 0}),
      prog.add_tensor({buffers.coef[4], z, 1, DType::F16, 0}),
  };
  // Accumulators alias u; the z-plus accumulator is shifted by one (the
  // Listing 1 trick).
  const int t_acc[5] = {
      prog.add_tensor({buffers.u + 1, z, 1, DType::F16, 0}),
      prog.add_tensor({buffers.u + 1, z, 1, DType::F16, 0}),
      prog.add_tensor({buffers.u + 1, z, 1, DType::F16, 0}),
      prog.add_tensor({buffers.u + 1, z, 1, DType::F16, 0}),
      prog.add_tensor({buffers.u, z, 1, DType::F16, 0}),
  };
  const int t_acc_c = prog.add_tensor({buffers.u + 1, z, 1, DType::F16, 0});

  // --- tasks (ids fixed by insertion order) ---
  const TaskId id_spmv = static_cast<TaskId>(prog.tasks.size());
  const TaskId id_sum = id_spmv + 1;
  const TaskId id_sum2 = id_spmv + 2;
  const TaskId id_xdone = id_spmv + 3;
  const TaskId id_ydone = id_spmv + 4;
  const TaskId id_cdone = id_spmv + 5;
  const TaskId id_xydone = id_spmv + 6;
  const TaskId id_xycdone = id_spmv + 7;

  Task spmv_task{"spmv", false, false, false, {}};
  Task sum_task{"sumtask", true, false, false, {}};
  Task sum_task2{"sumtask2", true, false, false, {}};
  Task xdone{"xdone", false, n_x_streams == 2, false, {}};
  Task ydone{"ydone", false, n_y_streams == 2, false, {}};
  Task cdone{"cdone", false, true, false, {}};
  Task xydone{"xydone", false, true, false, {}};
  Task xycdone{"xycdone", false, true, false, {}};

  // --- FIFOs ---
  int fifo_ids[5];
  for (int k = 0; k < 5; ++k) {
    const int base = mem.allocate(options.fifo_depth, DType::F16);
    const TaskId sink = (options.num_sum_tasks >= 2 && k >= 3) ? id_sum2 : id_sum;
    fifo_ids[k] = prog.add_fifo({base, options.fifo_depth, 0, 0, 0, sink});
  }

  // --- fabric descriptors ---
  const int f_tx = prog.add_fabric({tessellation_color(tx, ty), z,
                                    DType::F16, 0, kNoTask, TrigAction::None});
  int f_rx[5] = {-1, -1, -1, -1, -1};
  {
    bool first = true;
    if (has_xp) {
      f_rx[0] = prog.add_fabric(
          {tessellation_color(tx + 1, ty), z, DType::F16, 0, id_xdone,
           first ? TrigAction::Activate : TrigAction::Unblock});
      first = false;
    }
    if (has_xm) {
      f_rx[1] = prog.add_fabric(
          {tessellation_color(tx - 1, ty), z, DType::F16, 0, id_xdone,
           first ? TrigAction::Activate : TrigAction::Unblock});
    }
  }
  {
    bool first = true;
    if (has_yp) {
      f_rx[2] = prog.add_fabric(
          {tessellation_color(tx, ty + 1), z, DType::F16, 0, id_ydone,
           first ? TrigAction::Activate : TrigAction::Unblock});
      first = false;
    }
    if (has_ym) {
      f_rx[3] = prog.add_fabric(
          {tessellation_color(tx, ty - 1), z, DType::F16, 0, id_ydone,
           first ? TrigAction::Activate : TrigAction::Unblock});
    }
  }
  f_rx[4] = prog.add_fabric(
      {kChanLoopZp, z, DType::F16, 0, id_cdone, TrigAction::Activate});
  const int f_c = prog.add_fabric(
      {kChanLoopC, z, DType::F16, 0, id_cdone, TrigAction::Unblock});

  // --- spmv task body (Listing 1's order) ---
  const int slot0 = options.first_thread_slot;
  {
    // Free profiler phase marker: all cycles of the streamed SpMV —
    // including the priority summation tasks its FIFO pushes activate —
    // bin as SpMV until the completion tree hands off to the caller.
    spmv_task.steps.push_back(set_phase_step(ProgPhase::SpMV));

    Instr send{};
    send.op = OpKind::Send;
    send.src1 = t_send_src;
    send.fabric = f_tx;
    spmv_task.steps.push_back({TaskStep::Kind::Launch, slot0 + 5, send, kNoTask});

    Instr init{};
    init.op = OpKind::MulVV;
    init.dst = t_zm_dst;
    init.src1 = t_zm_src;
    init.src2 = t_zm_coef;
    spmv_task.steps.push_back({TaskStep::Kind::Sync, -1, init, kNoTask});

    int slot = slot0;
    for (int k = 0; k < 5; ++k) {
      if (f_rx[k] < 0) {
        ++slot;
        continue;
      }
      Instr m{};
      m.op = OpKind::RecvMulToFifo;
      m.fabric = f_rx[k];
      m.src1 = t_coef[k];
      m.fifo = fifo_ids[k];
      spmv_task.steps.push_back({TaskStep::Kind::Launch, slot++, m, kNoTask});
    }

    Instr cadd{};
    cadd.op = OpKind::RecvAddTo;
    cadd.fabric = f_c;
    cadd.dst = t_acc_c;
    spmv_task.steps.push_back({TaskStep::Kind::Launch, slot0 + 6, cadd, kNoTask});
  }

  // --- summation task(s) ---
  for (int k = 0; k < 5; ++k) {
    Task& sink = (options.num_sum_tasks >= 2 && k >= 3) ? sum_task2 : sum_task;
    Instr d{};
    d.op = OpKind::FifoAddTo;
    d.fifo = fifo_ids[k];
    d.dst = t_acc[k];
    sink.steps.push_back({TaskStep::Kind::Sync, -1, d, kNoTask});
  }

  // --- completion tree ---
  xdone.steps.push_back({TaskStep::Kind::Block, -1, {}, id_xdone});
  xdone.steps.push_back({TaskStep::Kind::Unblock, -1, {}, id_xydone});
  ydone.steps.push_back({TaskStep::Kind::Block, -1, {}, id_ydone});
  ydone.steps.push_back({TaskStep::Kind::Activate, -1, {}, id_xydone});
  xydone.steps.push_back({TaskStep::Kind::Block, -1, {}, id_xydone});
  xydone.steps.push_back({TaskStep::Kind::Unblock, -1, {}, id_xycdone});
  cdone.steps.push_back({TaskStep::Kind::Block, -1, {}, id_cdone});
  cdone.steps.push_back({TaskStep::Kind::Activate, -1, {}, id_xycdone});
  xycdone.steps.push_back({TaskStep::Kind::Block, -1, {}, id_xycdone});
  if (on_complete == kNoTask) {
    xycdone.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
  } else {
    xycdone.steps.push_back({TaskStep::Kind::Activate, -1, {}, on_complete});
  }

  // Degenerate fabrics: pre-fire the effects of barriers with no inputs.
  if (n_x_streams == 0 && n_y_streams == 0) {
    xycdone.blocked = false;
  } else if (n_x_streams == 0) {
    xydone.blocked = false;
  } else if (n_y_streams == 0) {
    xdone.steps.back() = {TaskStep::Kind::Activate, -1, {}, id_xydone};
    xydone.blocked = false;
  }

  prog.add_task(std::move(spmv_task));
  prog.add_task(std::move(sum_task));
  prog.add_task(std::move(sum_task2));
  prog.add_task(std::move(xdone));
  prog.add_task(std::move(ydone));
  prog.add_task(std::move(cdone));
  prog.add_task(std::move(xydone));
  prog.add_task(std::move(xycdone));
  return id_spmv;
}

void write_spmv_coefficients(TileCore& core, const Stencil7<fp16_t>& a,
                             int tx, int ty, const SpmvBuffers& buffers) {
  const int z_extent = a.grid.nz;
  for (int zz = 0; zz < z_extent; ++zz) {
    core.host_write_f16(buffers.coef[0] + zz, a.xp(tx, ty, zz));
    core.host_write_f16(buffers.coef[1] + zz, a.xm(tx, ty, zz));
    core.host_write_f16(buffers.coef[2] + zz, a.yp(tx, ty, zz));
    core.host_write_f16(buffers.coef[3] + zz, a.ym(tx, ty, zz));
    // z-plus coefficients aligned to the looped-back stream: arrival k is
    // v_k, contributing zp[k-1] * v_k to out[k-1].
    core.host_write_f16(buffers.coef[4] + zz,
                        zz >= 1 ? a.zp(tx, ty, zz - 1) : fp16_t(0.0));
    core.host_write_f16(buffers.coef[5] + zz, a.zm(tx, ty, zz));
  }
}

} // namespace wss::wsekernels
