#pragma once

// Shared builder for the Fig. 6 AllReduce as a sequence of task steps:
// inject the local fp32 value toward the row center, role-specific
// accumulate-and-forward along rows, columns, and the 4:1 root reduction,
// then receive the broadcast. Because the final receive blocks until the
// root has heard from everyone, an AllReduce is also a global barrier —
// which is what serializes the four reductions of a BiCGStab iteration on
// the same set of colors.

#include "wse/program.hpp"
#include "wse/route_compiler.hpp"

namespace wss::wsekernels {

/// Scalar-register roles the steps use.
struct AllReduceRegs {
  int src = 0;     ///< this tile's contribution (read only)
  int partial = 1; ///< scratch for row/column partials (clobbered)
  int dst = 2;     ///< receives the global sum (zeroed first)
};

/// Append the steps for tile (x, y) of a width*height fabric to `task`.
/// The matching routes come from wse::add_allreduce_routes.
void append_allreduce_steps(wse::TileProgram& prog, wse::Task& task, int x,
                            int y, int width, int height,
                            const AllReduceRegs& regs,
                            wse::Color color_base = wse::kAllReduceBase);

/// Split phases of the same tree, for running two reductions on disjoint
/// color sets concurrently: append the injection of `src`, then later the
/// role/receive steps. inject+complete == append_allreduce_steps.
void append_allreduce_inject(wse::TileProgram& prog, wse::Task& task, int x,
                             int y, int width, int height, int src_reg,
                             wse::Color color_base);
void append_allreduce_complete(wse::TileProgram& prog, wse::Task& task,
                               int x, int y, int width, int height,
                               const AllReduceRegs& regs,
                               wse::Color color_base);

} // namespace wss::wsekernels
