#include "wsekernels/spmv3d_program.hpp"

#include <stdexcept>
#include <string>

#include "telemetry/postmortem.hpp"
#include "wse/flow_table.hpp"
#include "wse/route_compiler.hpp"
#include "wsekernels/spmv_instance.hpp"

namespace wss::wsekernels {

using namespace wse;

SpMV3DSimulation::SpMV3DSimulation(const Stencil7<fp16_t>& a,
                                   const CS1Params& arch,
                                   const SimParams& sim,
                                   SpMV3DOptions options)
    : grid_(a.grid), fabric_(a.grid.nx, a.grid.ny, arch, sim) {
  if (!a.unit_diagonal) {
    throw std::invalid_argument(
        "SpMV3DSimulation requires a diagonal-preconditioned matrix");
  }
  const int X = grid_.nx;
  const int Y = grid_.ny;
  const int Z = grid_.nz;
  layouts_.resize(static_cast<std::size_t>(X) * static_cast<std::size_t>(Y));

  for (int ty = 0; ty < Y; ++ty) {
    for (int tx = 0; tx < X; ++tx) {
      TileProgram prog;
      MemAllocator mem(arch.tile_memory_bytes);
      SpmvBuffers buffers;
      buffers.v = mem.allocate(Z + 2, DType::F16);
      buffers.u = mem.allocate(Z + 1, DType::F16);
      for (int k = 0; k < 6; ++k) {
        buffers.coef[k] = mem.allocate(Z, DType::F16);
      }

      SpmvInstanceOptions inst;
      inst.fifo_depth = options.fifo_depth;
      inst.num_sum_tasks = options.num_sum_tasks;
      const TaskId entry = append_spmv_instance(
          prog, mem, buffers, Z, tx, ty, X, Y, inst, kNoTask);

      prog.initial_task = entry;
      prog.memory_halfwords = mem.used_halfwords();
      prog.num_scalars = 1;
      if (mem.used_bytes() > tile_memory_bytes_) {
        tile_memory_bytes_ = mem.used_bytes();
      }

      fabric_.configure_tile(tx, ty, std::move(prog),
                             compile_spmv_routes(tx, ty, X, Y));
      TileLayout layout;
      layout.v = buffers.v;
      layout.u = buffers.u;
      for (int k = 0; k < 6; ++k) layout.coef[k] = buffers.coef[k];
      layouts_[static_cast<std::size_t>(ty) * static_cast<std::size_t>(X) +
               static_cast<std::size_t>(tx)] = layout;
    }
  }

  // Load the matrix coefficients once (host action, not timed).
  for (int ty = 0; ty < Y; ++ty) {
    for (int tx = 0; tx < X; ++tx) {
      const TileLayout& layout =
          layouts_[static_cast<std::size_t>(ty) * static_cast<std::size_t>(X) +
                   static_cast<std::size_t>(tx)];
      SpmvBuffers buffers;
      buffers.v = layout.v;
      buffers.u = layout.u;
      for (int k = 0; k < 6; ++k) buffers.coef[k] = layout.coef[k];
      write_spmv_coefficients(fabric_.core(tx, ty), a, tx, ty, buffers);
    }
  }
}

Field3<fp16_t> SpMV3DSimulation::run(const Field3<fp16_t>& v) {
  const int X = grid_.nx;
  const int Y = grid_.ny;
  const int Z = grid_.nz;

  fabric_.reset_control();
  for (int ty = 0; ty < Y; ++ty) {
    for (int tx = 0; tx < X; ++tx) {
      TileCore& core = fabric_.core(tx, ty);
      const TileLayout& layout =
          layouts_[static_cast<std::size_t>(ty) * static_cast<std::size_t>(X) +
                   static_cast<std::size_t>(tx)];
      core.host_write_f16(layout.v, fp16_t(0.0)); // leading pad
      for (int z = 0; z < Z; ++z) {
        core.host_write_f16(layout.v + 1 + z, v(tx, ty, z));
      }
      core.host_write_f16(layout.v + 1 + Z, fp16_t(0.0)); // trailing pad
      for (int z = 0; z <= Z; ++z) {
        core.host_write_f16(layout.u + z, fp16_t(0.0));
      }
    }
  }

  const std::uint64_t before = fabric_.stats().cycles;
  const std::uint64_t budget =
      1000 + 50ull * static_cast<std::uint64_t>(Z) *
                 static_cast<std::uint64_t>(X + Y + 8);
  telemetry::RunForensics forensics(
      fabric_, "spmv3d " + std::to_string(grid_.nx) + "x" +
                   std::to_string(grid_.ny) + "x" + std::to_string(grid_.nz));
  // Network observatory (WSS_NETFLOWS): a bare SpMV has no iteration
  // counter to anchor a traffic projection, so the flows are declared
  // ungated — per-flow accounting and congestion attribution only.
  forensics.set_net_flows(wse::spmv_flow_table());
  const StopInfo stop = fabric_.run(budget);
  if (!fabric_.all_done()) {
    throw std::runtime_error(forensics.deadlock(
        stop, "SpMV simulation did not complete (deadlock?)"));
  }
  forensics.finished(&stop);
  last_cycles_ = fabric_.stats().cycles - before;

  Field3<fp16_t> u(grid_);
  for (int ty = 0; ty < Y; ++ty) {
    for (int tx = 0; tx < X; ++tx) {
      const TileCore& core = fabric_.core(tx, ty);
      const TileLayout& layout =
          layouts_[static_cast<std::size_t>(ty) * static_cast<std::size_t>(X) +
                   static_cast<std::size_t>(tx)];
      for (int z = 0; z < Z; ++z) {
        u(tx, ty, z) = core.host_read_f16(layout.u + 1 + z);
      }
    }
  }
  return u;
}

} // namespace wss::wsekernels
