#include "wsekernels/memory_model.hpp"

#include "wsekernels/wse_bicgstab.hpp"

namespace wss::wsekernels {

MeshFit check_mesh_fit(Grid3 mesh, const wse::CS1Params& arch,
                       int fifo_depth) {
  MeshFit fit;
  fit.fits_fabric = mesh.nx <= arch.fabric_x && mesh.ny <= arch.fabric_y;
  const TileMemoryBudget budget =
      bicgstab_tile_memory(mesh.nz, fifo_depth, arch.tile_memory_bytes);
  fit.fits_memory = budget.fits;
  fit.tile_bytes_used = budget.total_bytes;
  fit.tile_utilization =
      static_cast<double>(budget.total_bytes) / arch.tile_memory_bytes;
  fit.total_points = static_cast<std::int64_t>(mesh.size());
  return fit;
}

int max_pencil_z(const wse::CS1Params& arch, int fifo_depth) {
  // 10 fp16 words per z point (6 matrix diagonals + 4 vectors) plus the
  // five FIFO buffers: 20*z + 10*fifo_depth bytes <= 48 KB.
  return (arch.tile_memory_bytes - 10 * fifo_depth) / 20;
}

std::int64_t max_mesh_points(const wse::CS1Params& arch) {
  return static_cast<std::int64_t>(arch.fabric_x) * arch.fabric_y *
         max_pencil_z(arch);
}

std::int64_t TechnologyNode::max_points(const wse::CS1Params& base) const {
  const double scale =
      wafer_sram_gb /
      (static_cast<double>(base.total_memory_bytes) / (1024.0 * 1024 * 1024));
  wse::CS1Params scaled = base;
  scaled.tile_memory_bytes =
      static_cast<int>(base.tile_memory_bytes * scale);
  return max_mesh_points(scaled);
}

std::array<TechnologyNode, 3> technology_roadmap() {
  return {TechnologyNode{"16 nm (CS-1)", 18.0}, TechnologyNode{"7 nm", 40.0},
          TechnologyNode{"5 nm", 50.0}};
}

} // namespace wss::wsekernels
