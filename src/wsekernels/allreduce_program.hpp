#pragma once

// The Fig. 6 AllReduce as an executable program on the fabric simulator:
// fp32 scalar contributions reduce along rows into a center pair of
// columns, along those columns into a center quad, 4:1 onto a root tile,
// and broadcast back to every tile. The paper measures this at under
// 1.5 us for the full wafer — a cycle count about 10% above the fabric
// diameter — because each hop costs a single cycle.

#include <cstdint>
#include <vector>

#include "wse/fabric.hpp"

namespace wss::wsekernels {

struct AllReduceResult {
  /// Value each tile holds after the broadcast (row-major, y*width+x).
  std::vector<float> values;
  std::uint64_t cycles = 0;
};

/// Owns a configured fabric for repeated scalar AllReduce runs.
class AllReduceSimulation {
public:
  AllReduceSimulation(int width, int height, const wse::CS1Params& arch,
                      const wse::SimParams& sim);

  /// Sum `contributions` (row-major, one fp32 per tile) across the fabric
  /// and broadcast the result back.
  AllReduceResult run(const std::vector<float>& contributions);

  [[nodiscard]] const wse::Fabric& fabric() const { return fabric_; }
  /// Mutable access for host-side execution knobs (backend, threads,
  /// watchdog) — mirrors SpMV3DSimulation::fabric().
  [[nodiscard]] wse::Fabric& fabric() { return fabric_; }

private:
  int width_;
  int height_;
  wse::Fabric fabric_;
};

} // namespace wss::wsekernels
