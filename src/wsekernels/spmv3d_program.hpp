#pragma once

// The paper's Listing 1 / Fig. 4 SpMV as an executable program on the
// fabric simulator. The mesh is X x Y x Z with (X, Y) mapped onto the
// fabric and the whole Z pencil local to each tile. Each tile broadcasts
// its iterate to its four neighbors on its tessellation color, receives
// four neighbor streams on four distinct channels, loops its own stream
// back for the z-plus and main-diagonal terms, multiplies streams against
// coefficient vectors into five hardware FIFOs, and a FIFO-activated
// summation task accumulates into the result. A tree of two-way barriers
// (activate/unblock) detects completion.

#include <cstdint>

#include "mesh/field.hpp"
#include "stencil/stencil7.hpp"
#include "wse/fabric.hpp"

namespace wss::wsekernels {

struct SpMV3DOptions {
  int fifo_depth = 20;    ///< paper: "We used a FIFO depth of 20."
  int num_sum_tasks = 1;  ///< paper: "production code used two ... to
                          ///< improve performance"
};

/// Owns a configured fabric for repeated SpMV runs with a fixed matrix.
class SpMV3DSimulation {
public:
  /// `a` must have unit diagonal (diagonal-preconditioned), grid X x Y x Z;
  /// the fabric is sized X x Y.
  SpMV3DSimulation(const Stencil7<fp16_t>& a, const wse::CS1Params& arch,
                   const wse::SimParams& sim, SpMV3DOptions options = {});

  /// Run u = A*v on the simulated fabric. Returns the result field and
  /// records the cycle count of this run.
  Field3<fp16_t> run(const Field3<fp16_t>& v);

  [[nodiscard]] std::uint64_t last_run_cycles() const { return last_cycles_; }
  [[nodiscard]] const wse::Fabric& fabric() const { return fabric_; }
  [[nodiscard]] wse::Fabric& fabric() { return fabric_; }
  /// Memory used by the program+data on the busiest tile, in bytes.
  [[nodiscard]] int tile_memory_bytes() const { return tile_memory_bytes_; }

private:
  struct TileLayout {
    int v = 0;   ///< iterate, Z+2 halfwords (zero pads at both ends)
    int u = 0;   ///< result, Z+1 halfwords (scratch pad at index 0)
    int coef[6] = {0, 0, 0, 0, 0, 0}; ///< xp, xm, yp, ym, zp', zm
  };

  Grid3 grid_;
  wse::Fabric fabric_;
  std::vector<TileLayout> layouts_;
  std::uint64_t last_cycles_ = 0;
  int tile_memory_bytes_ = 0;
};

} // namespace wss::wsekernels
