#include "wsekernels/spmv2d.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "mesh/partition.hpp"

namespace wss::wsekernels {

void wse_spmv2d(const Stencil9<fp16_t>& a, const Field2<fp16_t>& v,
                Field2<fp16_t>& u, int block_x, int block_y) {
  const Grid2 g = a.grid;
  if (block_x <= 0 || block_y <= 0) {
    throw std::invalid_argument("block sizes must be positive");
  }
  const int tiles_x = (g.nx + block_x - 1) / block_x;
  const int tiles_y = (g.ny + block_y - 1) / block_y;

  // Per-tile accumulation plane: the tile's own block plus a one-point
  // output-halo ring. Keeping the planes tile-local (instead of one shared
  // extended plane) makes the accumulation order the wafer's order — local
  // FMACs first, then one add per received halo value, x rounds before y
  // rounds — which is what the exact-bits differential tests pin down.
  std::vector<Field2<fp16_t>> planes(
      static_cast<std::size_t>(tiles_x) * static_cast<std::size_t>(tiles_y));
  const auto plane_of = [&](int tx, int ty) -> Field2<fp16_t>& {
    return planes[static_cast<std::size_t>(ty * tiles_x + tx)];
  };

  // Phase 1: every tile multiplies its local v against its local columns of
  // A, accumulating into its own block and its output-halo ring (FMAC
  // order: the 9 contributions of a point are applied consecutively).
  for (int ty = 0; ty < tiles_y; ++ty) {
    for (int tx = 0; tx < tiles_x; ++tx) {
      const Span1 sx = split1(g.nx, tiles_x, tx);
      const Span1 sy = split1(g.ny, tiles_y, ty);
      Field2<fp16_t> plane(Grid2(sx.end - sx.begin + 2, sy.end - sy.begin + 2),
                           fp16_t(0.0));
      for (int x = sx.begin; x < sx.end; ++x) {
        for (int y = sy.begin; y < sy.end; ++y) {
          // Column view: v(x,y) contributes coeff_at_target * v to each
          // neighbor target (xt, yt) where the stencil of (xt, yt) reaches
          // (x, y) with offset (x - xt, y - yt). Targets outside the mesh
          // have no row (Dirichlet-zero closure): nothing is computed for
          // them, so the domain-boundary ring stays zero and is discarded.
          for (int k = 0; k < 9; ++k) {
            const auto [dx, dy] =
                kStencil9Offsets[static_cast<std::size_t>(k)];
            const int xt = x - dx;
            const int yt = y - dy;
            if (!g.contains(xt, yt)) continue;
            const fp16_t c = a.coeff[static_cast<std::size_t>(k)](xt, yt);
            fp16_t& acc = plane(xt - sx.begin + 1, yt - sy.begin + 1);
            acc = fmac(c, v(x, y), acc);
          }
        }
      }
      plane_of(tx, ty) = std::move(plane);
    }
  }

  // Phase 2a: x-round halo exchange. Each tile adds the neighbor's facing
  // ring *column* over its full local height — ring-row cells included, so
  // a corner contribution completes its first hop here and rides the
  // y-round for the second (diagonal targets travel two one-hop legs, the
  // paper's Section IV-2 shape). Receive order: from west, then from east.
  // Reads touch only ring columns and writes only interior columns, so the
  // exchange is order-independent across tiles.
  for (int ty = 0; ty < tiles_y; ++ty) {
    for (int tx = 0; tx < tiles_x; ++tx) {
      Field2<fp16_t>& plane = plane_of(tx, ty);
      const int bw = plane.grid().nx - 2;
      const int bh = plane.grid().ny - 2;
      if (tx > 0) {
        const Field2<fp16_t>& west = plane_of(tx - 1, ty);
        const int wbw = west.grid().nx - 2;
        for (int yy = 0; yy < bh + 2; ++yy) {
          plane(1, yy) = plane(1, yy) + west(wbw + 1, yy);
        }
      }
      if (tx + 1 < tiles_x) {
        const Field2<fp16_t>& east = plane_of(tx + 1, ty);
        for (int yy = 0; yy < bh + 2; ++yy) {
          plane(bw, yy) = plane(bw, yy) + east(0, yy);
        }
      }
    }
  }

  // Phase 2b: y-round halo exchange, interior width only (the corner
  // cells of the facing ring row already hold the folded-in diagonal
  // contributions from 2a). Receive order: from north, then from south.
  for (int ty = 0; ty < tiles_y; ++ty) {
    for (int tx = 0; tx < tiles_x; ++tx) {
      Field2<fp16_t>& plane = plane_of(tx, ty);
      const int bw = plane.grid().nx - 2;
      const int bh = plane.grid().ny - 2;
      if (ty > 0) {
        const Field2<fp16_t>& north = plane_of(tx, ty - 1);
        const int nbh = north.grid().ny - 2;
        for (int xx = 1; xx <= bw; ++xx) {
          plane(xx, 1) = plane(xx, 1) + north(xx, nbh + 1);
        }
      }
      if (ty + 1 < tiles_y) {
        const Field2<fp16_t>& south = plane_of(tx, ty + 1);
        for (int xx = 1; xx <= bw; ++xx) {
          plane(xx, bh) = plane(xx, bh) + south(xx, 0);
        }
      }
    }
  }

  Field2<fp16_t> out(g);
  for (int ty = 0; ty < tiles_y; ++ty) {
    for (int tx = 0; tx < tiles_x; ++tx) {
      const Span1 sx = split1(g.nx, tiles_x, tx);
      const Span1 sy = split1(g.ny, tiles_y, ty);
      const Field2<fp16_t>& plane = plane_of(tx, ty);
      for (int x = sx.begin; x < sx.end; ++x) {
        for (int y = sy.begin; y < sy.end; ++y) {
          out(x, y) = plane(x - sx.begin + 1, y - sy.begin + 1);
        }
      }
    }
  }
  u = out;
}

Spmv2DModel model_spmv2d_block(int block, int tile_capacity) {
  Spmv2DModel m;
  m.block = block;
  const std::int64_t points =
      static_cast<std::int64_t>(block) * static_cast<std::int64_t>(block);

  // Useful work per point: 8 off-diagonal multiply+adds = 16 ops. The
  // paper's accounting: the 2D kernel executes 18 ops per point (9 FMACs,
  // including the main diagonal it "should not receive performance credit
  // for"), plus one redundant add per received halo value. The sending
  // tile pre-sums its contributions (inside the 9 FMACs), so the receiver
  // performs one add per boundary point per adjacent side: ~4B + 8 adds
  // after the x-round and y-round exchanges.
  m.useful_ops = 16 * points;
  const std::int64_t halo_adds = 4LL * block + 8;
  m.executed_ops = 18 * points + halo_adds;
  m.overhead = static_cast<double>(m.executed_ops) /
                   static_cast<double>(m.useful_ops) -
               1.0;

  // Memory: 9 matrix coefficients + 7 solver vectors per point (fp16),
  // plus in/out halo buffers and the five 20-deep FIFOs.
  const std::int64_t words_per_point = 9 + 7;
  const std::int64_t halo_words = 2 * (4 * block + 4);
  const std::int64_t fifo_words = 5 * 20;
  m.memory_bytes = static_cast<int>(
      2 * (words_per_point * points + halo_words + fifo_words));
  m.fits = m.memory_bytes <= tile_capacity;
  return m;
}

int max_block_2d(int tile_capacity) {
  int best = 0;
  for (int b = 1; b <= 256; ++b) {
    if (model_spmv2d_block(b, tile_capacity).fits) best = b;
  }
  return best;
}

} // namespace wss::wsekernels
