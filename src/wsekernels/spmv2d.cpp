#include "wsekernels/spmv2d.hpp"

#include <stdexcept>

#include "mesh/partition.hpp"

namespace wss::wsekernels {

void wse_spmv2d(const Stencil9<fp16_t>& a, const Field2<fp16_t>& v,
                Field2<fp16_t>& u, int block_x, int block_y) {
  const Grid2 g = a.grid;
  if (block_x <= 0 || block_y <= 0) {
    throw std::invalid_argument("block sizes must be positive");
  }
  const int tiles_x = (g.nx + block_x - 1) / block_x;
  const int tiles_y = (g.ny + block_y - 1) / block_y;

  // Extended accumulation plane with a one-point ring so output-halo
  // contributions land without bounds checks; ring cells are discarded at
  // the global boundary and exchanged between blocks otherwise.
  Field2<fp16_t> ext(Grid2(g.nx + 2, g.ny + 2), fp16_t(0.0));

  // Phase 1: every tile multiplies its local v against its local columns of
  // A, accumulating into its own block and its output halo (FMAC order:
  // the 9 contributions of a point are applied consecutively).
  for (int ty = 0; ty < tiles_y; ++ty) {
    for (int tx = 0; tx < tiles_x; ++tx) {
      const Span1 sx = split1(g.nx, tiles_x, tx);
      const Span1 sy = split1(g.ny, tiles_y, ty);
      for (int x = sx.begin; x < sx.end; ++x) {
        for (int y = sy.begin; y < sy.end; ++y) {
          // Column view: v(x,y) contributes coeff_at_target * v to each
          // neighbor target (xt, yt) where the stencil of (xt, yt) reaches
          // (x, y) with offset (x - xt, y - yt).
          for (int k = 0; k < 9; ++k) {
            const auto [dx, dy] =
                kStencil9Offsets[static_cast<std::size_t>(k)];
            const int xt = x - dx;
            const int yt = y - dy;
            if (!g.contains(xt, yt)) continue;
            const fp16_t c = a.coeff[static_cast<std::size_t>(k)](xt, yt);
            fp16_t& acc = ext(xt + 1, yt + 1);
            acc = fmac(c, v(x, y), acc);
          }
        }
      }
    }
  }
  // Phase 2 (halo exchange + add) is subsumed: the shared `ext` plane plays
  // the role of the exchanged halos; the per-target accumulation order
  // matches one add per received halo value. Numerically this reproduces
  // the wafer's fp16 accumulation; the exchange cost is captured by
  // model_spmv2d_block, not here.

  Field2<fp16_t> out(g);
  for (int x = 0; x < g.nx; ++x) {
    for (int y = 0; y < g.ny; ++y) {
      out(x, y) = ext(x + 1, y + 1);
    }
  }
  u = out;
}

Spmv2DModel model_spmv2d_block(int block, int tile_capacity) {
  Spmv2DModel m;
  m.block = block;
  const std::int64_t points =
      static_cast<std::int64_t>(block) * static_cast<std::int64_t>(block);

  // Useful work per point: 8 off-diagonal multiply+adds = 16 ops. The
  // paper's accounting: the 2D kernel executes 18 ops per point (9 FMACs,
  // including the main diagonal it "should not receive performance credit
  // for"), plus one redundant add per received halo value. The sending
  // tile pre-sums its contributions (inside the 9 FMACs), so the receiver
  // performs one add per boundary point per adjacent side: ~4B + 8 adds
  // after the x-round and y-round exchanges.
  m.useful_ops = 16 * points;
  const std::int64_t halo_adds = 4LL * block + 8;
  m.executed_ops = 18 * points + halo_adds;
  m.overhead = static_cast<double>(m.executed_ops) /
                   static_cast<double>(m.useful_ops) -
               1.0;

  // Memory: 9 matrix coefficients + 7 solver vectors per point (fp16),
  // plus in/out halo buffers and the five 20-deep FIFOs.
  const std::int64_t words_per_point = 9 + 7;
  const std::int64_t halo_words = 2 * (4 * block + 4);
  const std::int64_t fifo_words = 5 * 20;
  m.memory_bytes = static_cast<int>(
      2 * (words_per_point * points + halo_words + fifo_words));
  m.fits = m.memory_bytes <= tile_capacity;
  return m;
}

int max_block_2d(int tile_capacity) {
  int best = 0;
  for (int b = 1; b <= 256; ++b) {
    if (model_spmv2d_block(b, tile_capacity).fits) best = b;
  }
  return best;
}

} // namespace wss::wsekernels
