#include "wsekernels/axpy_dot_program.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace wss::wsekernels {

using namespace wse;

namespace {

LocalKernelTiming run_local(int width, int height, int z, OpKind op,
                            const CS1Params& arch, const SimParams& sim) {
  Fabric fabric(width, height, arch, sim);
  Rng rng(1234);

  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      TileProgram prog;
      MemAllocator mem(arch.tile_memory_bytes);
      const int xs = mem.allocate(z, DType::F16);
      const int ys = mem.allocate(z, DType::F16);
      const int t_x = prog.add_tensor({xs, z, 1, DType::F16, 0});
      const int t_y = prog.add_tensor({ys, z, 1, DType::F16, 0});
      prog.num_scalars = 2;

      Task main{"kernel", false, false, false, {}};
      Instr in{};
      in.op = op;
      if (op == OpKind::AxpyV) {
        in.dst = t_y;
        in.src1 = t_x;
        in.scalar = 0;
      } else {
        in.src1 = t_x;
        in.src2 = t_y;
        in.scalar = 1;
      }
      main.steps.push_back({TaskStep::Kind::Sync, -1, in, kNoTask});
      main.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
      prog.add_task(std::move(main));
      prog.initial_task = 0;
      prog.memory_halfwords = mem.used_halfwords();

      fabric.configure_tile(x, y, std::move(prog), RoutingTable{});
      TileCore& core = fabric.core(x, y);
      core.host_write_scalar(0, 0.5f);
      for (int k = 0; k < z; ++k) {
        core.host_write_f16(xs + k, fp16_t(rng.uniform(-1.0, 1.0)));
        core.host_write_f16(ys + k, fp16_t(rng.uniform(-1.0, 1.0)));
      }
    }
  }

  const StopInfo stop = fabric.run(100 + 4ull * static_cast<std::uint64_t>(z));
  if (!fabric.all_done()) {
    throw std::runtime_error("local kernel timing did not complete\n" +
                             stop.report);
  }
  LocalKernelTiming t;
  t.cycles = fabric.stats().cycles;
  t.cycles_per_element = static_cast<double>(t.cycles) / z;
  return t;
}

} // namespace

LocalKernelTiming time_axpy(int width, int height, int z,
                            const CS1Params& arch, const SimParams& sim) {
  return run_local(width, height, z, OpKind::AxpyV, arch, sim);
}

LocalKernelTiming time_dot_local(int width, int height, int z,
                                 const CS1Params& arch,
                                 const SimParams& sim) {
  return run_local(width, height, z, OpKind::DotMixed, arch, sim);
}

} // namespace wss::wsekernels
