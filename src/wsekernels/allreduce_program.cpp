#include "wsekernels/allreduce_program.hpp"

#include <stdexcept>
#include <string>

#include "telemetry/postmortem.hpp"
#include "wse/route_compiler.hpp"
#include "wsekernels/allreduce_steps.hpp"

namespace wss::wsekernels {

using namespace wse;

namespace {

// Scalar register roles on every tile.
constexpr int kRegLocal = 0;   ///< this tile's contribution
constexpr int kRegPartial = 1; ///< row/column partial sums
constexpr int kRegResult = 2;  ///< the broadcast global sum

} // namespace

AllReduceSimulation::AllReduceSimulation(int width, int height,
                                         const CS1Params& arch,
                                         const SimParams& sim)
    : width_(width), height_(height), fabric_(width, height, arch, sim) {
  if (width < 2 || height < 2) {
    throw std::invalid_argument("AllReduce needs a fabric of at least 2x2");
  }
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      TileProgram prog;
      prog.num_scalars = 3;

      Task main{"allreduce", false, false, false, {}};
      append_allreduce_steps(prog, main, x, y, width, height,
                             {kRegLocal, kRegPartial, kRegResult});
      main.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});

      prog.add_task(std::move(main));
      prog.initial_task = 0;

      RoutingTable routes;
      add_allreduce_routes(routes, x, y, width, height);
      fabric_.configure_tile(x, y, std::move(prog), routes);
    }
  }
}

AllReduceResult AllReduceSimulation::run(
    const std::vector<float>& contributions) {
  if (contributions.size() !=
      static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_)) {
    throw std::invalid_argument("one contribution per tile required");
  }
  fabric_.reset_control();
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      TileCore& core = fabric_.core(x, y);
      core.host_write_scalar(kRegLocal,
                             contributions[static_cast<std::size_t>(y) *
                                               static_cast<std::size_t>(width_) +
                                           static_cast<std::size_t>(x)]);
      core.host_write_scalar(kRegPartial, 0.0f);
      core.host_write_scalar(kRegResult, 0.0f);
    }
  }

  const std::uint64_t before = fabric_.stats().cycles;
  const std::uint64_t budget =
      1000 + 20ull * static_cast<std::uint64_t>(width_ + height_);
  telemetry::RunForensics forensics(
      fabric_, "allreduce " + std::to_string(width_) + "x" +
                   std::to_string(height_));
  const StopInfo stop = fabric_.run(budget);
  if (!fabric_.all_done()) {
    throw std::runtime_error(
        forensics.deadlock(stop, "AllReduce simulation did not complete"));
  }
  forensics.finished(&stop);

  AllReduceResult result;
  result.cycles = fabric_.stats().cycles - before;
  result.values.resize(contributions.size());
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      result.values[static_cast<std::size_t>(y) *
                        static_cast<std::size_t>(width_) +
                    static_cast<std::size_t>(x)] =
          fabric_.core(x, y).host_read_scalar(kRegResult);
    }
  }
  return result;
}

} // namespace wss::wsekernels
