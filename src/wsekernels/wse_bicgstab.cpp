#include "wsekernels/wse_bicgstab.hpp"

#include <cmath>
#include <stdexcept>

#include "telemetry/probe.hpp"
#include "wse/route_compiler.hpp"

namespace wss::wsekernels {

float wse_allreduce_tree(const std::vector<float>& partials, int fabric_x,
                         int fabric_y) {
  if (partials.size() != static_cast<std::size_t>(fabric_x) *
                             static_cast<std::size_t>(fabric_y)) {
    throw std::invalid_argument("one partial per tile required");
  }
  const auto g = wse::allreduce_geometry(fabric_x, fabric_y);
  auto at = [&](int x, int y) -> float {
    return partials[static_cast<std::size_t>(y) *
                        static_cast<std::size_t>(fabric_x) +
                    static_cast<std::size_t>(x)];
  };

  // Row reduction: each center core accumulates its half-row in arrival
  // order (its own value first, then neighbors nearest-first).
  std::vector<float> left(static_cast<std::size_t>(fabric_y));
  std::vector<float> right(static_cast<std::size_t>(fabric_y));
  for (int y = 0; y < fabric_y; ++y) {
    float accl = 0.0f;
    for (int x = g.cxl; x >= 0; --x) accl += at(x, y);
    float accr = 0.0f;
    for (int x = g.cxr; x < fabric_x; ++x) accr += at(x, y);
    left[static_cast<std::size_t>(y)] = accl;
    right[static_cast<std::size_t>(y)] = accr;
  }

  // Column reduction into the center quad, nearest row first.
  auto col_reduce = [&](const std::vector<float>& col, int from, int to,
                        int stepdir) {
    float acc = 0.0f;
    for (int y = from; y != to; y += stepdir) {
      acc += col[static_cast<std::size_t>(y)];
    }
    return acc;
  };
  const float nl = col_reduce(left, g.cyt, -1, -1);
  const float sl = col_reduce(left, g.cyb, fabric_y, +1);
  const float nr = col_reduce(right, g.cyt, -1, -1);
  const float sr = col_reduce(right, g.cyb, fabric_y, +1);

  // 4:1 onto the root (cxr, cyb): the two west tiles send east, then the
  // north-east tile sends south.
  const float top = nr + nl;  // (cxr, cyt) accumulates (cxl, cyt)
  const float bot = sr + sl;  // (cxr, cyb) accumulates (cxl, cyb)
  return bot + top;           // root accumulates the Final word
}

void wse_spmv(const Stencil7<fp16_t>& a, const Field3<fp16_t>& v,
              Field3<fp16_t>& u) {
  if (!a.unit_diagonal) {
    throw std::invalid_argument("wse_spmv requires a unit diagonal");
  }
  const Grid3 g = a.grid;
  for (int x = 0; x < g.nx; ++x) {
    for (int y = 0; y < g.ny; ++y) {
      // 1. Initialize with the in-memory z-minus product (main thread).
      for (int z = 0; z < g.nz; ++z) {
        u(x, y, z) = z > 0 ? a.zm(x, y, z) * v(x, y, z - 1) : fp16_t(0.0);
      }
      // 2. Streamed terms in the sumtask order of Listing 1:
      //    xp, xm, zp, yp, ym — each product rounded, each add rounded.
      if (x + 1 < g.nx) {
        for (int z = 0; z < g.nz; ++z) {
          u(x, y, z) = u(x, y, z) + a.xp(x, y, z) * v(x + 1, y, z);
        }
      }
      if (x > 0) {
        for (int z = 0; z < g.nz; ++z) {
          u(x, y, z) = u(x, y, z) + a.xm(x, y, z) * v(x - 1, y, z);
        }
      }
      for (int z = 0; z + 1 < g.nz; ++z) {
        u(x, y, z) = u(x, y, z) + a.zp(x, y, z) * v(x, y, z + 1);
      }
      if (y + 1 < g.ny) {
        for (int z = 0; z < g.nz; ++z) {
          u(x, y, z) = u(x, y, z) + a.yp(x, y, z) * v(x, y + 1, z);
        }
      }
      if (y > 0) {
        for (int z = 0; z < g.nz; ++z) {
          u(x, y, z) = u(x, y, z) + a.ym(x, y, z) * v(x, y - 1, z);
        }
      }
      // 3. Main diagonal (all ones after preconditioning): plain add.
      for (int z = 0; z < g.nz; ++z) {
        u(x, y, z) = u(x, y, z) + v(x, y, z);
      }
    }
  }
}

float wse_dot(const Field3<fp16_t>& a, const Field3<fp16_t>& b) {
  const Grid3 g = a.grid();
  std::vector<float> partials(static_cast<std::size_t>(g.nx) *
                              static_cast<std::size_t>(g.ny));
  for (int y = 0; y < g.ny; ++y) {
    for (int x = 0; x < g.nx; ++x) {
      float acc = 0.0f;
      for (int z = 0; z < g.nz; ++z) {
        acc = mixed_fma(a(x, y, z), b(x, y, z), acc);
      }
      partials[static_cast<std::size_t>(y) * static_cast<std::size_t>(g.nx) +
               static_cast<std::size_t>(x)] = acc;
    }
  }
  if (g.nx < 2 || g.ny < 2) {
    // Degenerate fabrics reduce on a single row/column; plain order.
    float acc = 0.0f;
    for (float p : partials) acc += p;
    return acc;
  }
  return wse_allreduce_tree(partials, g.nx, g.ny);
}

TileMemoryBudget bicgstab_tile_memory(int z, int fifo_depth,
                                      int tile_capacity) {
  TileMemoryBudget m;
  m.matrix_bytes = 6 * z * 2;       // six fp16 diagonals
  m.vector_bytes = 4 * z * 2;       // x, r/p, r0, s|q / y|r reuse: 4 live
  m.fifo_bytes = 5 * fifo_depth * 2;
  m.total_bytes = m.matrix_bytes + m.vector_bytes + m.fifo_bytes;
  m.fits = m.total_bytes <= tile_capacity;
  return m;
}

WseBicgstabSolver::WseBicgstabSolver(const Stencil7<fp16_t>& a) : a_(&a) {
  if (!a.unit_diagonal) {
    throw std::invalid_argument(
        "WseBicgstabSolver requires a diagonal-preconditioned matrix");
  }
  memory_ = bicgstab_tile_memory(a.grid.nz);
}

SolveResult WseBicgstabSolver::solve(const Field3<fp16_t>& b,
                                     Field3<fp16_t>& x,
                                     const SolveControls& controls) const {
  const Grid3 g = a_->grid;
  const std::size_t n = g.size();
  SolveResult result;
  FlopCounter* fc = &result.flops;
  telemetry::SolverProbe probe(controls.metrics, controls.spans,
                               controls.probe_name);
  auto solve_span = probe.phase("wse_bicgstab");

  Field3<fp16_t> r(g), r0(g), p(g), s(g), q(g), y(g), ax(g);

  wse_spmv(*a_, x, ax);
  detail::count_muls<fp16_t>(*fc, 6 * n);
  detail::count_adds<fp16_t>(*fc, 6 * n);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ax[i];
  detail::count_adds<fp16_t>(*fc, n);
  for (std::size_t i = 0; i < n; ++i) {
    r0[i] = r[i];
    p[i] = r[i];
  }

  auto count_dot = [&] {
    detail::count_muls<fp16_t>(*fc, n);
    detail::count_adds<float>(*fc, n);
  };
  auto count_axpy = [&] {
    detail::count_muls<fp16_t>(*fc, n);
    detail::count_adds<fp16_t>(*fc, n);
  };
  auto count_spmv = [&] {
    detail::count_muls<fp16_t>(*fc, 6 * n);
    detail::count_adds<fp16_t>(*fc, 6 * n);
  };

  // The ||b|| dot rides the same AllReduce hardware as every other dot;
  // it belongs to the Table I census (setup column) like the rho dot.
  const double bnorm = std::sqrt(static_cast<double>(wse_dot(b, b)));
  count_dot();
  if (bnorm == 0.0) {
    x.fill(fp16_t(0.0));
    result.reason = StopReason::Converged;
    result.relative_residuals.push_back(0.0);
    probe.finish(to_string(result.reason), result.iterations,
                 result.final_residual());
    return result;
  }
  if (!std::isfinite(bnorm)) {
    result.reason = StopReason::Breakdown;
    result.breakdown = BreakdownKind::NonFiniteResidual;
    probe.finish(to_string(result.reason), result.iterations,
                 result.final_residual());
    return result;
  }

  float rho = wse_dot(r0, r);
  count_dot();

  // Breakdown recovery (mirrors solver/bicgstab.hpp): re-seed the Krylov
  // space from the current iterate with the wafer's own kernels.
  auto try_restart = [&](BreakdownKind kind) -> bool {
    result.breakdown = kind;
    result.reason = StopReason::Breakdown;
    if (result.restarts >= controls.max_restarts) return false;
    for (std::size_t i = 0; i < n; ++i) {
      if (x[i].is_nan() || x[i].is_inf()) return false;  // nothing to save
    }
    {
      auto span = probe.phase("restart");
      wse_spmv(*a_, x, ax);
      count_spmv();
      for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ax[i];
      detail::count_adds<fp16_t>(*fc, n);
      for (std::size_t i = 0; i < n; ++i) {
        r0[i] = r[i];
        p[i] = r[i];
      }
      rho = wse_dot(r0, r);
      count_dot();
    }
    if (rho == 0.0f || !std::isfinite(rho)) return false;
    ++result.restarts;
    result.breakdown = BreakdownKind::None;  // healed
    result.reason = StopReason::MaxIterations;
    return true;
  };

  for (int it = 0; it < controls.max_iterations; ++it) {
    auto iteration_span = probe.phase("iteration");

    // rho divides alpha and beta; Algorithm 1 checks it before either
    // (a restart consumes this iteration slot).
    if (!std::isfinite(rho)) {
      if (try_restart(BreakdownKind::NonFiniteScalar)) continue;
      break;
    }
    if (rho == 0.0f) {
      if (try_restart(BreakdownKind::RhoZero)) continue;
      break;
    }

    {
      auto span = probe.phase("spmv");
      wse_spmv(*a_, p, s);
      count_spmv();
    }

    float r0s = 0.0f;
    {
      auto span = probe.phase("dot+allreduce");
      r0s = wse_dot(r0, s);
      count_dot();
    }
    if (!std::isfinite(r0s)) {
      if (try_restart(BreakdownKind::NonFiniteScalar)) continue;
      break;
    }
    if (r0s == 0.0f) {
      if (try_restart(BreakdownKind::R0SZero)) continue;
      break;
    }
    const float alpha_f = rho / r0s;
    if (!std::isfinite(alpha_f)) {
      if (try_restart(BreakdownKind::NonFiniteScalar)) continue;
      break;
    }
    const fp16_t alpha(alpha_f);

    {
      auto span = probe.phase("axpy");
      for (std::size_t i = 0; i < n; ++i) q[i] = fmac(-alpha, s[i], r[i]);
      count_axpy();
    }

    {
      auto span = probe.phase("spmv");
      wse_spmv(*a_, q, y);
      count_spmv();
    }

    float qy = 0.0f;
    float yy = 0.0f;
    {
      auto span = probe.phase("dot+allreduce");
      qy = wse_dot(q, y);
      yy = wse_dot(y, y);
      count_dot();
      count_dot();
    }
    if (!std::isfinite(qy) || !std::isfinite(yy)) {
      if (try_restart(BreakdownKind::NonFiniteScalar)) continue;
      break;
    }
    // omega = (q,y)/(y,y): BOTH zeros break the recurrence — yy == 0
    // leaves omega undefined, qy == 0 makes omega == 0 and beta =
    // (alpha/omega)(...) divides by it. This is the silent fp16
    // NaN-poisoning path the old `yy == 0` guard missed.
    if (yy == 0.0f || qy == 0.0f) {
      if (try_restart(BreakdownKind::OmegaZero)) continue;
      break;
    }
    const fp16_t omega(qy / yy);
    // The wafer computes beta from the fp16-rounded omega (it never holds
    // the float quotient): a quotient below the fp16 subnormal floor is an
    // omega breakdown on hardware even though qy != 0 in fp32.
    if (omega.to_float() == 0.0f) {
      if (try_restart(BreakdownKind::OmegaZero)) continue;
      break;
    }
    if (omega.is_nan() || omega.is_inf()) {
      if (try_restart(BreakdownKind::NonFiniteScalar)) continue;
      break;
    }

    {
      auto span = probe.phase("axpy");
      for (std::size_t i = 0; i < n; ++i) x[i] = fmac(alpha, p[i], x[i]);
      for (std::size_t i = 0; i < n; ++i) x[i] = fmac(omega, q[i], x[i]);
      count_axpy();
      count_axpy();

      for (std::size_t i = 0; i < n; ++i) r[i] = fmac(-omega, y[i], q[i]);
      count_axpy();
    }

    float rho_next = 0.0f;
    float rr = 0.0f;
    {
      auto span = probe.phase("dot+allreduce");
      rho_next = wse_dot(r0, r);
      count_dot();
      rr = wse_dot(r, r);
    }
    const double rnorm = std::sqrt(static_cast<double>(rr));
    if (!std::isfinite(rnorm)) {
      if (try_restart(BreakdownKind::NonFiniteResidual)) continue;
      break;
    }
    result.relative_residuals.push_back(rnorm / bnorm);
    ++result.iterations;
    probe.iteration(result.iterations, rnorm / bnorm, result.flops.total());
    if (rnorm / bnorm < controls.tolerance) {
      result.reason = StopReason::Converged;
      probe.finish(to_string(result.reason), result.iterations,
                   result.final_residual());
      return result;
    }
    if (controls.stagnation_window > 0 &&
        result.iterations > controls.stagnation_window) {
      const double prev = result.relative_residuals[static_cast<std::size_t>(
          result.iterations - 1 - controls.stagnation_window)];
      if (rnorm / bnorm > prev * controls.stagnation_factor) {
        result.reason = StopReason::Stagnation;
        probe.finish(to_string(result.reason), result.iterations,
                     result.final_residual());
        return result;
      }
    }

    // rho and omega were guarded nonzero and finite above (Algorithm 1's
    // ordering: the old post-hoc `rho == 0` check ran only after rho had
    // already divided alpha); the quotient can still blow up in fp16.
    const double beta_d =
        static_cast<double>(alpha.to_float() / omega.to_float()) *
        (static_cast<double>(rho_next) / rho);
    if (!std::isfinite(beta_d)) {
      if (try_restart(BreakdownKind::NonFiniteScalar)) continue;
      break;
    }
    const fp16_t beta(beta_d);
    rho = rho_next;

    // p = r + beta (p - omega s)
    for (std::size_t i = 0; i < n; ++i) {
      const fp16_t t = fmac(-omega, s[i], p[i]);
      p[i] = fmac(beta, t, r[i]);
    }
    count_axpy();
    count_axpy();
  }
  probe.finish(to_string(result.reason), result.iterations,
               result.final_residual());
  return result;
}

} // namespace wss::wsekernels
