#include "wsekernels/bicgstab_program.hpp"

#include <stdexcept>
#include <string>

#include "perfmodel/flow_expectations.hpp"
#include "perfmodel/health_expectations.hpp"
#include "telemetry/postmortem.hpp"
#include "wse/flow_table.hpp"
#include "wse/route_compiler.hpp"
#include "wsekernels/allreduce_steps.hpp"
#include "wsekernels/spmv_instance.hpp"

namespace wss::wsekernels {

using namespace wse;

namespace {

// Scalar register file layout (identical on every tile).
constexpr int kRho = 0;
constexpr int kR0s = 1;
constexpr int kAlpha = 2;
constexpr int kNegAlpha = 3;
constexpr int kQy = 4;
constexpr int kYy = 5;
constexpr int kOmega = 6;
constexpr int kNegOmega = 7;
constexpr int kRhoNext = 8;
constexpr int kBeta = 9;
constexpr int kT1 = 10;
constexpr int kArLocal = 11;
constexpr int kArPartial = 12;
constexpr int kNumRegs = 13;

// Tasks per unrolled iteration: 8 (spmv1) + 1 (phase a) + 8 (spmv2) +
// 1 (phase b).
constexpr int kTasksPerIteration = 18;

} // namespace

BicgstabSimulation::BicgstabSimulation(const Stencil7<fp16_t>& a,
                                       int iterations,
                                       const CS1Params& arch,
                                       const SimParams& sim,
                                       BicgstabSimOptions options)
    : grid_(a.grid),
      iterations_(iterations),
      fuse_qy_yy_(options.fuse_qy_yy),
      fabric_(a.grid.nx, a.grid.ny, arch, sim) {
  if (!a.unit_diagonal) {
    throw std::invalid_argument(
        "BicgstabSimulation requires a diagonal-preconditioned matrix");
  }
  if (iterations < 1) {
    throw std::invalid_argument("need at least one iteration");
  }
  const int X = grid_.nx;
  const int Y = grid_.ny;
  const int Z = grid_.nz;
  layouts_.resize(static_cast<std::size_t>(X) * static_cast<std::size_t>(Y));

  for (int ty = 0; ty < Y; ++ty) {
    for (int tx = 0; tx < X; ++tx) {
      TileProgram prog;
      prog.num_scalars = kNumRegs;
      MemAllocator mem(arch.tile_memory_bytes);
      TileLayout lay;
      lay.r0 = mem.allocate(Z, DType::F16);
      lay.r = mem.allocate(Z, DType::F16);
      lay.x = mem.allocate(Z, DType::F16);
      lay.p = mem.allocate(Z + 2, DType::F16);
      lay.q = mem.allocate(Z + 2, DType::F16);
      lay.s = mem.allocate(Z + 1, DType::F16);
      lay.y = mem.allocate(Z + 1, DType::F16);
      for (int k = 0; k < 6; ++k) lay.coef[k] = mem.allocate(Z, DType::F16);

      // Descriptor helpers (fresh descriptor per use: positions advance).
      auto td = [&prog](int base, int len) {
        return prog.add_tensor({base, len, 1, DType::F16, 0});
      };
      auto sync = [](Task& t, Instr in) {
        t.steps.push_back({TaskStep::Kind::Sync, -1, in, kNoTask});
      };
      // Free profiler phase markers (docs/PROFILING.md): each helper
      // declares the phase its cycles belong to; the value is sticky
      // until the next marker, so every cycle bins exactly once.
      auto mark = [](Task& t, ProgPhase p) {
        t.steps.push_back(set_phase_step(p));
      };
      auto dot_into = [&](Task& t, int base_a, int base_b, int target_reg) {
        mark(t, ProgPhase::Dot);
        Instr zero{};
        zero.op = OpKind::SetScalar;
        zero.scalar = kArLocal;
        sync(t, zero);
        Instr d{};
        d.op = OpKind::DotMixed;
        d.src1 = td(base_a, Z);
        d.src2 = td(base_b, Z);
        d.scalar = kArLocal;
        sync(t, d);
        append_allreduce_steps(prog, t, tx, ty, X, Y,
                               {kArLocal, kArPartial, target_reg});
      };
      auto scalar_div = [&](Task& t, int dst, int num, int den) {
        mark(t, ProgPhase::Control);
        Instr in{};
        in.op = OpKind::ScalarDiv;
        in.scalar = dst;
        in.scalar_a = num;
        in.scalar_b = den;
        sync(t, in);
      };
      auto scalar_mul = [&](Task& t, int dst, int sa, int sb) {
        mark(t, ProgPhase::Control);
        Instr in{};
        in.op = OpKind::ScalarMul;
        in.scalar = dst;
        in.scalar_a = sa;
        in.scalar_b = sb;
        sync(t, in);
      };
      auto scalar_scale = [&](Task& t, int dst, int src, double f) {
        mark(t, ProgPhase::Control);
        Instr in{};
        in.op = OpKind::ScalarMulImm;
        in.scalar = dst;
        in.scalar_a = src;
        in.imm = f;
        sync(t, in);
      };
      auto xpay = [&](Task& t, int dst, int src1, int src2, int scalar_reg) {
        // dst = src1 + scalar * src2 (all element bases).
        mark(t, ProgPhase::Axpy);
        Instr in{};
        in.op = OpKind::ScaleXPayV;
        in.dst = td(dst, Z);
        in.src1 = td(src1, Z);
        in.src2 = td(src2, Z);
        in.scalar = scalar_reg;
        sync(t, in);
      };
      auto axpy = [&](Task& t, int dst, int src, int scalar_reg) {
        mark(t, ProgPhase::Axpy);
        Instr in{};
        in.op = OpKind::AxpyV;
        in.dst = td(dst, Z);
        in.src1 = td(src, Z);
        in.scalar = scalar_reg;
        sync(t, in);
      };
      auto activate = [](Task& t, TaskId target) {
        t.steps.push_back({TaskStep::Kind::Activate, -1, {}, target});
      };

      // --- Task 0: initial rho = (r0, r) ---
      Task init{"bicg_init", false, false, false, {}};
      dot_into(init, lay.r0, lay.r, kRho);
      // Iteration window marker: the tile is entering iteration 1.
      init.steps.push_back(mark_iteration_step());
      activate(init, 1); // first iteration's spmv1 entry

      prog.add_task(std::move(init));

      SpmvInstanceOptions spmv_opt;
      SpmvBuffers buf_p;
      buf_p.v = lay.p;
      buf_p.u = lay.s;
      for (int k = 0; k < 6; ++k) buf_p.coef[k] = lay.coef[k];
      SpmvBuffers buf_q;
      buf_q.v = lay.q;
      buf_q.u = lay.y;
      for (int k = 0; k < 6; ++k) buf_q.coef[k] = lay.coef[k];

      for (int it = 0; it < iterations; ++it) {
        const TaskId base = 1 + it * kTasksPerIteration;
        const TaskId id_phase_a = base + 8;
        const TaskId id_phase_b = base + 17;
        const TaskId id_next =
            it + 1 < iterations ? base + kTasksPerIteration : kNoTask;

        // SpMV 1: s = A p, completion activates phase a.
        const TaskId entry1 = append_spmv_instance(
            prog, mem, buf_p, Z, tx, ty, X, Y, spmv_opt, id_phase_a);
        if (entry1 != base) {
          throw std::logic_error("task id layout mismatch (spmv1)");
        }

        // Phase a: alpha from (r0, s); q = r - alpha s; start SpMV 2.
        Task phase_a{"bicg_a", false, false, false, {}};
        dot_into(phase_a, lay.r0, lay.s + 1, kR0s);
        scalar_div(phase_a, kAlpha, kRho, kR0s);
        scalar_scale(phase_a, kNegAlpha, kAlpha, -1.0);
        xpay(phase_a, lay.q + 1, lay.r, lay.s + 1, kNegAlpha);
        activate(phase_a, base + 9); // spmv2 entry
        prog.add_task(std::move(phase_a));

        // SpMV 2: y = A q, completion activates phase b.
        const TaskId entry2 = append_spmv_instance(
            prog, mem, buf_q, Z, tx, ty, X, Y, spmv_opt, id_phase_b);
        if (entry2 != base + 9) {
          throw std::logic_error("task id layout mismatch (spmv2)");
        }

        // Phase b: omega, updates, rho/beta recurrence, p update.
        Task phase_b{"bicg_b", false, false, false, {}};
        if (!options.fuse_qy_yy) {
          dot_into(phase_b, lay.q + 1, lay.y + 1, kQy);
          dot_into(phase_b, lay.y + 1, lay.y + 1, kYy);
        } else {
          // Fused: both dots injected back to back into two disjoint
          // reduction trees that flow through the fabric concurrently.
          {
            mark(phase_b, ProgPhase::Dot);
            Instr zero{};
            zero.op = OpKind::SetScalar;
            zero.scalar = kArLocal;
            sync(phase_b, zero);
            Instr d{};
            d.op = OpKind::DotMixed;
            d.src1 = td(lay.q + 1, Z);
            d.src2 = td(lay.y + 1, Z);
            d.scalar = kArLocal;
            sync(phase_b, d);
            Instr zero2{};
            zero2.op = OpKind::SetScalar;
            zero2.scalar = kT1; // scratch for the second local dot
            sync(phase_b, zero2);
            Instr d2{};
            d2.op = OpKind::DotMixed;
            d2.src1 = td(lay.y + 1, Z);
            d2.src2 = td(lay.y + 1, Z);
            d2.scalar = kT1;
            sync(phase_b, d2);
            // Both trees injected back to back so they flow through the
            // fabric concurrently; the center tiles' role steps then
            // drain tree B right behind tree A.
            append_allreduce_inject(prog, phase_b, tx, ty, X, Y, kArLocal,
                                    kAllReduceBase);
            append_allreduce_inject(prog, phase_b, tx, ty, X, Y, kT1,
                                    kAllReduceBase2);
            append_allreduce_complete(prog, phase_b, tx, ty, X, Y,
                                      {kArLocal, kArPartial, kQy},
                                      kAllReduceBase);
            append_allreduce_complete(prog, phase_b, tx, ty, X, Y,
                                      {kT1, kArPartial, kYy},
                                      kAllReduceBase2);
          }
        }
        scalar_div(phase_b, kOmega, kQy, kYy);
        scalar_scale(phase_b, kNegOmega, kOmega, -1.0);
        axpy(phase_b, lay.x, lay.p + 1, kAlpha);
        axpy(phase_b, lay.x, lay.q + 1, kOmega);
        xpay(phase_b, lay.r, lay.q + 1, lay.y + 1, kNegOmega);
        dot_into(phase_b, lay.r0, lay.r, kRhoNext);
        scalar_div(phase_b, kT1, kAlpha, kOmega);
        scalar_div(phase_b, kBeta, kRhoNext, kRho);
        scalar_mul(phase_b, kBeta, kT1, kBeta);
        scalar_scale(phase_b, kRho, kRhoNext, 1.0);
        xpay(phase_b, lay.s + 1, lay.p + 1, lay.s + 1, kNegOmega);
        xpay(phase_b, lay.p + 1, lay.r, lay.s + 1, kBeta);
        // Iteration boundary: the tile is entering the next iteration (or
        // the drain window, for the last one).
        phase_b.steps.push_back(mark_iteration_step());
        if (id_next == kNoTask) {
          phase_b.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
        } else {
          activate(phase_b, id_next);
        }
        prog.add_task(std::move(phase_b));
      }

      prog.initial_task = 0;
      prog.memory_halfwords = mem.used_halfwords();
      if (mem.used_bytes() > tile_memory_bytes_) {
        tile_memory_bytes_ = mem.used_bytes();
      }

      RoutingTable routes = compile_spmv_routes(tx, ty, X, Y);
      add_allreduce_routes(routes, tx, ty, X, Y);
      add_allreduce_routes(routes, tx, ty, X, Y, kAllReduceBase2);
      fabric_.configure_tile(tx, ty, std::move(prog), routes);
      layouts_[static_cast<std::size_t>(ty) * static_cast<std::size_t>(X) +
               static_cast<std::size_t>(tx)] = lay;

      SpmvBuffers cbuf;
      for (int k = 0; k < 6; ++k) cbuf.coef[k] = lay.coef[k];
      write_spmv_coefficients(fabric_.core(tx, ty), a, tx, ty, cbuf);
    }
  }
}

BicgstabSimResult BicgstabSimulation::run(const Field3<fp16_t>& b) {
  const int X = grid_.nx;
  const int Y = grid_.ny;
  const int Z = grid_.nz;

  fabric_.reset_control();
  for (int ty = 0; ty < Y; ++ty) {
    for (int tx = 0; tx < X; ++tx) {
      TileCore& core = fabric_.core(tx, ty);
      const TileLayout& lay =
          layouts_[static_cast<std::size_t>(ty) * static_cast<std::size_t>(X) +
                   static_cast<std::size_t>(tx)];
      // x0 = 0, r = r0 = p = b; q zeroed; s, y zeroed (pads included).
      for (int z = 0; z < Z; ++z) {
        const fp16_t v = b(tx, ty, z);
        core.host_write_f16(lay.r0 + z, v);
        core.host_write_f16(lay.r + z, v);
        core.host_write_f16(lay.x + z, fp16_t(0.0));
        core.host_write_f16(lay.p + 1 + z, v);
        core.host_write_f16(lay.q + 1 + z, fp16_t(0.0));
      }
      for (const int base : {lay.p, lay.q}) {
        core.host_write_f16(base, fp16_t(0.0));
        core.host_write_f16(base + Z + 1, fp16_t(0.0));
      }
      for (const int base : {lay.s, lay.y}) {
        for (int z = 0; z <= Z; ++z) {
          core.host_write_f16(base + z, fp16_t(0.0));
        }
      }
      for (int reg = 0; reg < kNumRegs; ++reg) {
        core.host_write_scalar(reg, 0.0f);
      }
    }
  }

  const std::uint64_t before = fabric_.stats().cycles;
  const std::uint64_t per_iter =
      1000 + 60ull * static_cast<std::uint64_t>(Z) +
      40ull * static_cast<std::uint64_t>(X + Y);
  telemetry::RunForensics forensics(
      fabric_, "bicgstab " + std::to_string(grid_.nx) + "x" +
                   std::to_string(grid_.ny) + "x" + std::to_string(grid_.nz));
  if (telemetry::TimeSeriesSampler* sampler = forensics.sampler();
      sampler != nullptr) {
    // Arm the health engine's perfmodel drift gate: the sampler carries
    // the CS1 per-phase projection into the flushed series, where the
    // windowed cycle attribution is checked against it (docs/HEALTH.md).
    sampler->set_expectations(
        perfmodel::bicgstab_expectations(grid_.nz, X, Y));
  }
  // Network observatory (WSS_NETFLOWS): declare the program's flow palette
  // and its per-iteration traffic anchors so the flushed series/netflows
  // artifact attribute every link word and gate delivery against the
  // projection.
  forensics.set_net_flows(
      wse::bicgstab_flow_table(),
      perfmodel::bicgstab_flow_expectations(grid_.nz, X, Y, fuse_qy_yy_));
  const StopInfo stop =
      fabric_.run(per_iter * static_cast<std::uint64_t>(iterations_ + 1));
  if (!fabric_.all_done()) {
    throw std::runtime_error(
        forensics.deadlock(stop, "BiCGStab simulation did not complete"));
  }
  forensics.finished(&stop);

  BicgstabSimResult result;
  result.cycles = fabric_.stats().cycles - before;
  result.iterations = iterations_;
  result.x = Field3<fp16_t>(grid_);
  result.r = Field3<fp16_t>(grid_);
  for (int ty = 0; ty < Y; ++ty) {
    for (int tx = 0; tx < X; ++tx) {
      const TileCore& core = fabric_.core(tx, ty);
      const TileLayout& lay =
          layouts_[static_cast<std::size_t>(ty) * static_cast<std::size_t>(X) +
                   static_cast<std::size_t>(tx)];
      for (int z = 0; z < Z; ++z) {
        result.x(tx, ty, z) = core.host_read_f16(lay.x + z);
        result.r(tx, ty, z) = core.host_read_f16(lay.r + z);
      }
    }
  }
  result.rho_history.push_back(fabric_.core(0, 0).host_read_scalar(kRho));
  return result;
}

} // namespace wss::wsekernels
