#include "wsekernels/allreduce_steps.hpp"

namespace wss::wsekernels {

using namespace wse;

namespace {

Instr send_scalar(TileProgram& prog, Color color, int reg, int len) {
  Instr s{};
  s.op = OpKind::SendScalar;
  s.scalar = reg;
  s.fabric =
      prog.add_fabric({color, len, DType::F32, 0, kNoTask, TrigAction::None});
  return s;
}

Instr recv_acc(TileProgram& prog, Color channel, int reg, int len) {
  Instr r{};
  r.op = OpKind::RecvAccScalar;
  r.scalar = reg;
  r.fabric = prog.add_fabric(
      {channel, len, DType::F32, 0, kNoTask, TrigAction::None});
  return r;
}

Instr zero_scalar(int reg) {
  Instr z{};
  z.op = OpKind::SetScalar;
  z.scalar = reg;
  z.imm = 0.0;
  return z;
}

void sync(Task& task, Instr in) {
  task.steps.push_back({TaskStep::Kind::Sync, -1, in, kNoTask});
}

} // namespace

void append_allreduce_inject(TileProgram& prog, Task& task, int x, int y,
                             int width, int height, int src_reg,
                             Color color_base) {
  (void)x;
  (void)y;
  (void)width;
  (void)height;
  // Free profiler phase marker (docs/PROFILING.md): cycles from here bin
  // as AllReduce until the caller's next marker.
  task.steps.push_back(set_phase_step(ProgPhase::AllReduce));
  sync(task, send_scalar(prog, color_base /* row-reduce color */, src_reg, 1));
}

void append_allreduce_complete(TileProgram& prog, Task& task, int x, int y,
                               int width, int height,
                               const AllReduceRegs& regs, Color color_base) {
  task.steps.push_back(set_phase_step(ProgPhase::AllReduce));
  const AllReduceGeometry g = allreduce_geometry(width, height);
  const Color c_row = color_base;
  const Color c_col = static_cast<Color>(color_base + 1);
  const Color c_quad = static_cast<Color>(color_base + 2);
  const Color c_final = static_cast<Color>(color_base + 3);
  const Color c_bcast = static_cast<Color>(color_base + 4);

  // Row centers accumulate their half-row, forward along the column.
  if (g.is_row_center(x)) {
    const int count = x == g.cxl ? g.west_count() : g.east_count(width);
    sync(task, zero_scalar(regs.partial));
    sync(task, recv_acc(prog, c_row, regs.partial, count));
    sync(task, send_scalar(prog, c_col, regs.partial, 1));
  }

  // The center quad accumulates half-columns; 4:1 onto the root.
  if (g.is_row_center(x) && g.is_col_center(y)) {
    const int count = y == g.cyt ? g.north_count() : g.south_count(height);
    sync(task, zero_scalar(regs.partial));
    sync(task, recv_acc(prog, c_col, regs.partial, count));
    if (x == g.cxl) {
      sync(task, send_scalar(prog, c_quad, regs.partial, 1));
    } else if (y == g.cyt) {
      sync(task, recv_acc(prog, c_quad, regs.partial, 1));
      sync(task, send_scalar(prog, c_final, regs.partial, 1));
    } else {
      sync(task, recv_acc(prog, c_quad, regs.partial, 1));
      sync(task, recv_acc(prog, c_final, regs.partial, 1));
      sync(task, send_scalar(prog, c_bcast, regs.partial, 1));
    }
  }

  // Everyone receives the broadcast.
  sync(task, zero_scalar(regs.dst));
  sync(task, recv_acc(prog, c_bcast, regs.dst, 1));
}

void append_allreduce_steps(TileProgram& prog, Task& task, int x, int y,
                            int width, int height, const AllReduceRegs& regs,
                            Color color_base) {
  append_allreduce_inject(prog, task, x, y, width, height, regs.src,
                          color_base);
  append_allreduce_complete(prog, task, x, y, width, height, regs,
                            color_base);
}

} // namespace wss::wsekernels
