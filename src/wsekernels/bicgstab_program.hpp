#pragma once

// The complete BiCGStab iteration as a dataflow program on the cycle-level
// fabric simulator — the paper's actual artifact: per iteration, two
// Listing-1 SpMVs, four mixed-precision local dots each followed by a
// blocking Fig. 6 AllReduce (which also serializes the phases globally),
// six AXPY-class vector updates, and the scalar recurrence (alpha, omega,
// beta) computed redundantly on every tile from the broadcast reductions.
// Iterations are unrolled at program-build time; each runs in ~the model's
// 2*spmv + 4*(dot+allreduce) + 6*axpy cycle budget, which is how the
// Section V performance model is validated end to end.

#include <cstdint>
#include <vector>

#include "mesh/field.hpp"
#include "stencil/stencil7.hpp"
#include "wse/fabric.hpp"

namespace wss::wsekernels {

struct BicgstabSimResult {
  Field3<fp16_t> x;          ///< solution iterate after the last iteration
  Field3<fp16_t> r;          ///< final recurrence residual vector
  std::uint64_t cycles = 0;  ///< total cycles for all iterations
  int iterations = 0;
  /// Global (r0, r) after each iteration, read from any tile's rho reg.
  std::vector<float> rho_history;
};

struct BicgstabSimOptions {
  /// Extension (Section IV-3 notes the paper did NOT use a
  /// communication-hiding variant): run the (q,y) and (y,y) reductions
  /// concurrently on disjoint color trees, shaving one blocking
  /// reduction's latency per iteration.
  bool fuse_qy_yy = false;
};

/// Runs `iterations` BiCGStab iterations (no convergence test — the paper
/// measures fixed-iteration timing the same way) on the simulated fabric.
class BicgstabSimulation {
public:
  /// `a` must be diagonal-preconditioned; fabric is a.grid.nx x a.grid.ny.
  BicgstabSimulation(const Stencil7<fp16_t>& a, int iterations,
                     const wse::CS1Params& arch, const wse::SimParams& sim,
                     BicgstabSimOptions options = {});

  /// Solve starting from x0 = 0 with right-hand side `b`.
  BicgstabSimResult run(const Field3<fp16_t>& b);

  [[nodiscard]] const wse::Fabric& fabric() const { return fabric_; }
  [[nodiscard]] wse::Fabric& fabric() { return fabric_; }
  [[nodiscard]] int tile_memory_bytes() const { return tile_memory_bytes_; }

private:
  struct TileLayout {
    int r0 = 0, r = 0, x = 0; ///< plain Z vectors
    int p = 0, q = 0;         ///< Z+2 padded (SpMV inputs)
    int s = 0, y = 0;         ///< Z+1 (SpMV outputs, scratch at [0])
    int coef[6] = {0, 0, 0, 0, 0, 0};
  };

  Grid3 grid_;
  int iterations_;
  bool fuse_qy_yy_ = false; ///< echoed into the flow-traffic projection
  wse::Fabric fabric_;
  std::vector<TileLayout> layouts_;
  int tile_memory_bytes_ = 0;
};

} // namespace wss::wsekernels
