#pragma once

// Capacity accounting for the 3D mapping (Section IV and VIII-B): whether a
// given X x Y x Z mesh fits the wafer, how much of each tile's 48 KB the
// solver uses, and the largest Z pencil a tile can hold. Also models the
// technology-shrink capacities the discussion section projects (40 GB at
// 7 nm, 50 GB at 5 nm).

#include <array>
#include <cstdint>

#include "mesh/grid.hpp"
#include "wse/arch.hpp"

namespace wss::wsekernels {

struct MeshFit {
  bool fits_fabric = false;   ///< X x Y maps onto the fabric tiles
  bool fits_memory = false;   ///< the Z pencil working set fits 48 KB
  int tile_bytes_used = 0;
  double tile_utilization = 0.0;
  std::int64_t total_points = 0;

  [[nodiscard]] bool fits() const { return fits_fabric && fits_memory; }
};

/// Check the paper's headline mapping rule: X and Y across the fabric, one
/// Z pencil per core, 10*Z fp16 words of matrix+vector data per core
/// (plus FIFO buffers).
MeshFit check_mesh_fit(Grid3 mesh, const wse::CS1Params& arch,
                       int fifo_depth = 20);

/// Largest Z with the 10-words-per-point working set in 48 KB.
int max_pencil_z(const wse::CS1Params& arch, int fifo_depth = 20);

/// Total mesh points the wafer can hold under the 3D mapping.
std::int64_t max_mesh_points(const wse::CS1Params& arch);

/// Section VIII-B: projected wafer generations. "A technology shrink from
/// the 16 nm to 7 nm technology node will provide about 40 GB of SRAM on
/// the wafer and further increases (to 50 GB at 5 nm) will follow."
struct TechnologyNode {
  const char* name = "";
  double wafer_sram_gb = 0.0;

  /// Max meshpoints under the 10-words-per-point working set, assuming
  /// per-tile memory scales with total SRAM at a fixed tile count.
  [[nodiscard]] std::int64_t max_points(const wse::CS1Params& base) const;
};

/// The three generations the paper discusses: 16 nm (CS-1), 7 nm, 5 nm.
std::array<TechnologyNode, 3> technology_roadmap();

} // namespace wss::wsekernels
