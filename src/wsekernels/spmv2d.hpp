#pragma once

// The Section IV-2 mapping: a 2D mesh with a 9-point stencil, a rectangular
// block of the mesh per tile, all 9 multiplies done locally with FMAC, and
// an output-halo exchange (one round per direction, avoiding diagonal
// communication). Includes the efficiency/overhead model the paper states:
// blocks up to 38x38 fit in tile memory (22800^2 meshes on the full
// fabric), and even 8x8 blocks keep overhead under 20%.

#include <cstdint>

#include "mesh/field.hpp"
#include "stencil/stencil9.hpp"

namespace wss::wsekernels {

/// u = A*v computed block-by-block in the wafer's 2D mapping: each tile
/// computes all 9 contributions of its local v (FMAC per element), writing
/// an output halo, then halo sums are exchanged and added — first the x
/// rounds, then the y rounds, so corner contributions travel two hops.
/// Numerically fp16 with FMAC rounding.
void wse_spmv2d(const Stencil9<fp16_t>& a, const Field2<fp16_t>& v,
                Field2<fp16_t>& u, int block_x, int block_y);

/// Static cost/efficiency model for the 2D mapping.
struct Spmv2DModel {
  int block = 0;              ///< block edge length B
  std::int64_t useful_ops = 0;    ///< 16 per point: 8 off-diagonal FMACs
  std::int64_t executed_ops = 0;  ///< 18 per point + redundant halo adds
  double overhead = 0.0;          ///< executed/useful - 1
  int memory_bytes = 0;
  bool fits = false;
};

/// Model a BxB block per tile. Words per point: 9 matrix coefficients + 7
/// solver vectors (fp16), plus in/out halo rings and the FIFO buffers.
Spmv2DModel model_spmv2d_block(int block, int tile_capacity = 48 * 1024);

/// Largest square block that fits tile memory (the paper's 38).
int max_block_2d(int tile_capacity = 48 * 1024);

} // namespace wss::wsekernels
