#pragma once

// Reusable builder for one Listing-1 SpMV "instance" inside a tile
// program: the broadcast send, the in-memory z-minus initialization, the
// five stream-multiply threads feeding FIFOs, the FIFO-activated summation
// task(s), the main-diagonal add, and the activate/unblock completion
// tree. SpMV3DSimulation uses one instance per tile; the full BiCGStab
// program instantiates two per unrolled iteration (p -> s, then q -> y).

#include "stencil/stencil7.hpp"
#include "wse/core.hpp"
#include "wse/program.hpp"

namespace wss::wsekernels {

/// Halfword offsets of the buffers one SpMV reads and writes.
/// v: Z+2 elements with zero pads at both ends (data at v+1..v+Z);
/// u: Z+1 elements with a scratch slot at u (results at u+1..u+Z);
/// coef: xp, xm, yp, ym, zp' (stream-aligned), zm — Z elements each.
struct SpmvBuffers {
  int v = 0;
  int u = 0;
  int coef[6] = {0, 0, 0, 0, 0, 0};
};

struct SpmvInstanceOptions {
  int fifo_depth = 20;
  int num_sum_tasks = 1;
  /// Thread slots used by the background threads of this instance.
  /// Instances within one program may share slots as long as they never
  /// run concurrently (BiCGStab's SpMVs are serialized by the reductions).
  int first_thread_slot = 0;
};

/// Appends descriptors, FIFOs, and tasks for one SpMV to `prog`.
/// On completion the tree fires `on_complete` (Activate), or raises the
/// tile's done flag if `on_complete` is kNoTask. Returns the entry task
/// to activate (directly or as prog.initial_task).
wse::TaskId append_spmv_instance(wse::TileProgram& prog,
                                 wse::MemAllocator& mem,
                                 const SpmvBuffers& buffers, int z, int tx,
                                 int ty, int fabric_x, int fabric_y,
                                 const SpmvInstanceOptions& options,
                                 wse::TaskId on_complete);

/// Host-side load of the six coefficient arrays for tile (tx, ty),
/// including the stream-alignment shift of the z-plus diagonal.
void write_spmv_coefficients(wse::TileCore& core, const Stencil7<fp16_t>& a,
                             int tx, int ty, const SpmvBuffers& buffers);

} // namespace wss::wsekernels
