#pragma once

// Local-compute timing programs: AXPY (4-way SIMD fp16 FMAC) and the mixed
// hp-multiply/sp-accumulate dot product, run on every tile of a simulated
// fabric. These validate the Z/4 and Z/2 cycles-per-core terms of the
// analytic performance model; the dot variant can chain into the AllReduce
// tree for an end-to-end inner-product latency measurement.

#include <cstdint>

#include "wse/fabric.hpp"

namespace wss::wsekernels {

struct LocalKernelTiming {
  std::uint64_t cycles = 0;
  double cycles_per_element = 0.0;
};

/// Time y += a*x with vectors of length z on a width*height fabric.
LocalKernelTiming time_axpy(int width, int height, int z,
                            const wse::CS1Params& arch,
                            const wse::SimParams& sim);

/// Time a local dot product (mixed precision) of length z on every tile.
LocalKernelTiming time_dot_local(int width, int height, int z,
                                 const wse::CS1Params& arch,
                                 const wse::SimParams& sim);

} // namespace wss::wsekernels
