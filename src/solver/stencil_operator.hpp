#pragma once

// Adapters binding stencil matrices to the flat-vector interface the Krylov
// solvers consume, with the matvec flop census the Table I reproduction
// depends on (a 7-point SpMV with unit diagonal is exactly 6 multiplies and
// 6 adds per meshpoint).

#include <span>

#include "solver/blas.hpp"
#include "stencil/stencil7.hpp"
#include "stencil/stencil9.hpp"

namespace wss {

/// y = A*v for a 7-point stencil over flat z-fastest vectors.
template <typename T>
class Stencil7Operator {
public:
  explicit Stencil7Operator(const Stencil7<T>& a) : a_(&a) {}

  void operator()(std::span<const T> v, std::span<T> y,
                  FlopCounter* fc = nullptr) const {
    const Grid3 g = a_->grid;
    const std::size_t nz = static_cast<std::size_t>(g.nz);
    const std::size_t plane = static_cast<std::size_t>(g.ny) * nz;
    for (int x = 0; x < g.nx; ++x) {
      for (int yy = 0; yy < g.ny; ++yy) {
        const std::size_t row0 = static_cast<std::size_t>(x) * plane +
                                 static_cast<std::size_t>(yy) * nz;
        for (int z = 0; z < g.nz; ++z) {
          const std::size_t i = row0 + static_cast<std::size_t>(z);
          T acc = a_->unit_diagonal ? v[i] : a_->diag[i] * v[i];
          if (x + 1 < g.nx) acc = acc + a_->xp[i] * v[i + plane];
          if (x > 0) acc = acc + a_->xm[i] * v[i - plane];
          if (yy + 1 < g.ny) acc = acc + a_->yp[i] * v[i + nz];
          if (yy > 0) acc = acc + a_->ym[i] * v[i - nz];
          if (z + 1 < g.nz) acc = acc + a_->zp[i] * v[i + 1];
          if (z > 0) acc = acc + a_->zm[i] * v[i - 1];
          y[i] = acc;
        }
      }
    }
    if (fc != nullptr) {
      // Census as the wafer performs it: every point does 6 neighbor
      // multiply+adds (boundary tiles stream zero-padded halos, so the
      // datapath executes the same ops); the unit diagonal contributes one
      // more add and no multiply, a non-unit one a multiply and an add.
      const std::uint64_t n = a_->num_points();
      detail::count_muls<T>(*fc, 6 * n + (a_->unit_diagonal ? 0 : n));
      detail::count_adds<T>(*fc, 6 * n);
    }
  }

  [[nodiscard]] const Stencil7<T>& matrix() const { return *a_; }

private:
  const Stencil7<T>* a_;
};

/// y = A*v for a 9-point stencil over flat y-fastest vectors.
template <typename T>
class Stencil9Operator {
public:
  explicit Stencil9Operator(const Stencil9<T>& a) : a_(&a) {}

  void operator()(std::span<const T> v, std::span<T> y,
                  FlopCounter* fc = nullptr) const {
    const Grid2 g = a_->grid;
    for (int x = 0; x < g.nx; ++x) {
      for (int yy = 0; yy < g.ny; ++yy) {
        const std::size_t i = g.index(x, yy);
        T acc{};
        for (int k = 0; k < 9; ++k) {
          const auto [dx, dy] = kStencil9Offsets[static_cast<std::size_t>(k)];
          const int xn = x + dx;
          const int yn = yy + dy;
          if (!g.contains(xn, yn)) continue;
          if (k == 4 && a_->unit_diagonal) {
            acc = acc + v[i];
          } else {
            acc = acc +
                  a_->coeff[static_cast<std::size_t>(k)][i] * v[g.index(xn, yn)];
          }
        }
        y[i] = acc;
      }
    }
    if (fc != nullptr) {
      const std::uint64_t n = a_->num_points();
      detail::count_muls<T>(*fc, 8 * n + (a_->unit_diagonal ? 0 : n));
      detail::count_adds<T>(*fc, 8 * n);
    }
  }

  [[nodiscard]] const Stencil9<T>& matrix() const { return *a_; }

private:
  const Stencil9<T>* a_;
};

/// True relative residual ||b - A x|| / ||b|| computed in fp64 regardless of
/// the solve precision — the quantity Fig. 9 plots.
template <typename T, typename Op>
double true_relative_residual(const Op& op, std::span<const T> b,
                              std::span<const T> x) {
  std::vector<T> ax(b.size());
  op(x, std::span<T>(ax), nullptr);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double r = to_double(b[i]) - to_double(ax[i]);
    num += r * r;
    den += to_double(b[i]) * to_double(b[i]);
  }
  return den == 0.0 ? std::sqrt(num) : std::sqrt(num / den);
}

} // namespace wss
