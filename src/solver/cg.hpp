#pragma once

// Conjugate gradients for symmetric positive definite systems — the method
// BiCGStab generalizes (Section III). Used as a baseline and to validate
// the stencil operators on the symmetric Poisson problem.

#include <cmath>
#include <span>
#include <vector>

#include "solver/bicgstab.hpp" // SolveResult, SolveControls, StopReason
#include "solver/blas.hpp"

namespace wss {

/// Solve A x = b by CG in the arithmetic of policy P. A must be SPD.
template <typename P, typename ApplyFn>
SolveResult conjugate_gradient(ApplyFn&& apply,
                               std::span<const typename P::storage_t> b,
                               std::span<typename P::storage_t> x,
                               const SolveControls& controls = {}) {
  using T = typename P::storage_t;
  using Acc = typename P::dot_acc_t;
  const std::size_t n = b.size();

  SolveResult result;
  FlopCounter* fc = &result.flops;
  telemetry::SolverProbe probe(controls.metrics, controls.spans,
                               controls.probe_name);
  auto solve_span = probe.phase("cg");

  std::vector<T> r(n), p(n), ap(n);

  apply(std::span<const T>(x), std::span<T>(ap), fc);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - ap[i];
  }
  detail::count_adds<T>(*fc, n);
  copy(std::span<const T>(r), std::span<T>(p));

  // Setup dot joins the census, mirroring bicgstab's accounting.
  const double bnorm = norm2<P>(b, fc);
  if (bnorm == 0.0) {
    for (auto& xi : x) xi = T{};
    result.reason = StopReason::Converged;
    result.relative_residuals.push_back(0.0);
    probe.finish(to_string(result.reason), result.iterations,
                 result.final_residual());
    return result;
  }
  if (!std::isfinite(bnorm)) {
    result.reason = StopReason::Breakdown;
    result.breakdown = BreakdownKind::NonFiniteResidual;
    probe.finish(to_string(result.reason), result.iterations,
                 result.final_residual());
    return result;
  }

  Acc rr = dot<P>(std::span<const T>(r), std::span<const T>(r), fc);

  auto give_up = [&](BreakdownKind kind) {
    result.reason = StopReason::Breakdown;
    result.breakdown = kind;
  };

  for (int it = 0; it < controls.max_iterations; ++it) {
    auto iteration_span = probe.phase("iteration");

    // rr divides alpha and beta below; check it first (Algorithm order).
    const double rr_d = to_double(rr);
    if (!std::isfinite(rr_d)) {
      give_up(BreakdownKind::NonFiniteScalar);
      break;
    }
    if (rr_d == 0.0) {
      give_up(BreakdownKind::RhoZero);
      break;
    }

    Acc pap{};
    {
      auto span = probe.phase("spmv");
      apply(std::span<const T>(p), std::span<T>(ap), fc);
    }
    {
      auto span = probe.phase("dot");
      pap = dot<P>(std::span<const T>(p), std::span<const T>(ap), fc);
    }
    const double pap_d = to_double(pap);
    if (!std::isfinite(pap_d)) {
      give_up(BreakdownKind::NonFiniteScalar);
      break;
    }
    if (pap_d == 0.0) {
      give_up(BreakdownKind::R0SZero);  // (p, A p) = 0: A not SPD here
      break;
    }
    const double alpha_d = rr_d / pap_d;
    if (!std::isfinite(alpha_d)) {
      give_up(BreakdownKind::NonFiniteScalar);
      break;
    }
    const T alpha = from_double<T>(alpha_d);

    {
      auto span = probe.phase("axpy");
      axpy(alpha, std::span<const T>(p), std::span<T>(x), fc);
      axpy(-alpha, std::span<const T>(ap), std::span<T>(r), fc);
    }

    const Acc rr_next = dot<P>(std::span<const T>(r), std::span<const T>(r), fc);
    const double rnorm = std::sqrt(to_double(rr_next));
    if (!std::isfinite(rnorm)) {
      give_up(BreakdownKind::NonFiniteResidual);
      break;
    }
    result.relative_residuals.push_back(rnorm / bnorm);
    ++result.iterations;
    probe.iteration(result.iterations, rnorm / bnorm, result.flops.total());

    if (rnorm / bnorm < controls.tolerance) {
      result.reason = StopReason::Converged;
      probe.finish(to_string(result.reason), result.iterations,
                   result.final_residual());
      return result;
    }

    const double beta_d = to_double(rr_next) / rr_d;  // rr_d nonzero, finite
    if (!std::isfinite(beta_d)) {
      give_up(BreakdownKind::NonFiniteScalar);
      break;
    }
    const T beta = from_double<T>(beta_d);
    rr = rr_next;

    // p = r + beta p
    for (std::size_t i = 0; i < n; ++i) {
      T t = r[i];
      fma_update(t, beta, p[i]);
      p[i] = t;
    }
    detail::count_adds<T>(*fc, n);
    detail::count_muls<T>(*fc, n);
  }
  probe.finish(to_string(result.reason), result.iterations,
               result.final_residual());
  return result;
}

} // namespace wss
