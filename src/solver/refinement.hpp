#pragma once

// Mixed-precision iterative refinement (the correction scheme the paper's
// Section VI-B points to, citing Carson & Higham 2018): run the fast
// low-precision BiCGStab as an inner solver, compute the true residual in
// high precision, and re-solve for the correction. This recovers fp32-level
// accuracy from an fp16/mixed inner solve that alone plateaus near 1e-2.

#include <span>
#include <vector>

#include "solver/bicgstab.hpp"
#include "solver/stencil_operator.hpp"

namespace wss {

struct RefinementResult {
  int outer_iterations = 0;
  int total_inner_iterations = 0;
  /// True fp64 relative residual after each outer correction.
  std::vector<double> outer_residuals;
  bool converged = false;
};

/// Solve A x = b with inner precision policy P and fp64 outer residuals.
///
/// `apply_lo` applies A in the low precision (for the inner BiCGStab);
/// `apply_hi` applies A in fp64 (for the residual). `b_hi` is the fp64 rhs;
/// the refined solution accumulates in `x_hi` (fp64).
template <typename P, typename ApplyLo, typename ApplyHi>
RefinementResult iterative_refinement(ApplyLo&& apply_lo, ApplyHi&& apply_hi,
                                      std::span<const double> b_hi,
                                      std::span<double> x_hi,
                                      double tolerance, int max_outer,
                                      const SolveControls& inner_controls) {
  using T = typename P::storage_t;
  const std::size_t n = b_hi.size();

  RefinementResult result;
  std::vector<double> r_hi(n), ax(n);
  std::vector<T> r_lo(n), d_lo(n);

  double bnorm = 0.0;
  for (double bi : b_hi) bnorm += bi * bi;
  bnorm = std::sqrt(bnorm);
  if (bnorm == 0.0) {
    for (auto& xi : x_hi) xi = 0.0;
    result.converged = true;
    return result;
  }

  for (int outer = 0; outer < max_outer; ++outer) {
    // High-precision residual r = b - A x.
    apply_hi(std::span<const double>(x_hi), std::span<double>(ax));
    double rnorm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      r_hi[i] = b_hi[i] - ax[i];
      rnorm += r_hi[i] * r_hi[i];
    }
    rnorm = std::sqrt(rnorm);
    result.outer_residuals.push_back(rnorm / bnorm);
    if (rnorm / bnorm < tolerance) {
      result.converged = true;
      return result;
    }

    // Scale the residual toward O(1) so fp16 doesn't underflow, solve
    // A d = r/s in low precision, then x += s*d.
    const double scale = rnorm > 0.0 ? 1.0 / rnorm : 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      r_lo[i] = from_double<T>(r_hi[i] * scale);
      d_lo[i] = T{};
    }
    const SolveResult inner = bicgstab<P>(apply_lo, std::span<const T>(r_lo),
                                          std::span<T>(d_lo), inner_controls);
    result.total_inner_iterations += inner.iterations;
    for (std::size_t i = 0; i < n; ++i) {
      x_hi[i] += to_double(d_lo[i]) / scale;
    }
    ++result.outer_iterations;
  }

  // Final residual check.
  apply_hi(std::span<const double>(x_hi), std::span<double>(ax));
  double rnorm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = b_hi[i] - ax[i];
    rnorm += r * r;
  }
  rnorm = std::sqrt(rnorm);
  result.outer_residuals.push_back(rnorm / bnorm);
  result.converged = rnorm / bnorm < tolerance;
  return result;
}

} // namespace wss
