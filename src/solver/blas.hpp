#pragma once

// Vector kernels in the arithmetic the paper uses: AXPY in the storage
// precision with FMAC semantics, dot products in the policy's accumulation
// precision (fp16 multiply feeding an fp32 accumulator in the mixed mode).
// Flop counting hooks feed the Table I census.

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/precision.hpp"

namespace wss {

/// Census of floating point work by width, mirroring Table I's columns.
struct FlopCounter {
  std::uint64_t hp_add = 0;
  std::uint64_t hp_mul = 0;
  std::uint64_t sp_add = 0;
  std::uint64_t sp_mul = 0;
  std::uint64_t dp_add = 0;
  std::uint64_t dp_mul = 0;

  [[nodiscard]] std::uint64_t total() const {
    return hp_add + hp_mul + sp_add + sp_mul + dp_add + dp_mul;
  }
  void reset() { *this = FlopCounter{}; }

  FlopCounter& operator+=(const FlopCounter& o) {
    hp_add += o.hp_add;
    hp_mul += o.hp_mul;
    sp_add += o.sp_add;
    sp_mul += o.sp_mul;
    dp_add += o.dp_add;
    dp_mul += o.dp_mul;
    return *this;
  }
};

namespace detail {

template <typename T>
void count_adds(FlopCounter& c, std::uint64_t n) {
  if constexpr (std::is_same_v<T, fp16_t>) {
    c.hp_add += n;
  } else if constexpr (std::is_same_v<T, float>) {
    c.sp_add += n;
  } else {
    c.dp_add += n;
  }
}

template <typename T>
void count_muls(FlopCounter& c, std::uint64_t n) {
  if constexpr (std::is_same_v<T, fp16_t>) {
    c.hp_mul += n;
  } else if constexpr (std::is_same_v<T, float>) {
    c.sp_mul += n;
  } else {
    c.dp_mul += n;
  }
}

} // namespace detail

/// y += a*x elementwise, one FMAC-rounded update per element.
template <typename T>
void axpy(T a, std::span<const T> x, std::span<T> y,
          FlopCounter* fc = nullptr) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    fma_update(y[i], a, x[i]);
  }
  if (fc != nullptr) {
    detail::count_adds<T>(*fc, x.size());
    detail::count_muls<T>(*fc, x.size());
  }
}

/// y = x + a*z elementwise (the p-update shape in BiCGStab).
template <typename T>
void xpay(std::span<const T> x, T a, std::span<const T> z, std::span<T> y,
          FlopCounter* fc = nullptr) {
  assert(x.size() == y.size() && z.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    T t = x[i];
    fma_update(t, a, z[i]);
    y[i] = t;
  }
  if (fc != nullptr) {
    detail::count_adds<T>(*fc, x.size());
    detail::count_muls<T>(*fc, x.size());
  }
}

/// Dot product in the policy's accumulation precision.
template <typename P>
typename P::dot_acc_t dot(std::span<const typename P::storage_t> a,
                          std::span<const typename P::storage_t> b,
                          FlopCounter* fc = nullptr) {
  assert(a.size() == b.size());
  typename P::dot_acc_t acc{};
  for (std::size_t i = 0; i < a.size(); ++i) {
    P::dot_step(acc, a[i], b[i]);
  }
  if (fc != nullptr) {
    detail::count_muls<typename P::storage_t>(*fc, a.size());
    detail::count_adds<typename P::dot_acc_t>(*fc, a.size());
  }
  return acc;
}

/// Euclidean norm via the policy dot, returned as double for reporting.
template <typename P>
double norm2(std::span<const typename P::storage_t> a,
             FlopCounter* fc = nullptr) {
  return std::sqrt(static_cast<double>(to_double(dot<P>(a, a, fc))));
}

template <typename T>
void copy(std::span<const T> src, std::span<T> dst) {
  assert(src.size() == dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
}

/// Convert a vector between element types, rounding once per element.
template <typename Dst, typename Src>
std::vector<Dst> convert(std::span<const Src> v) {
  std::vector<Dst> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = from_double<Dst>(to_double(v[i]));
  }
  return out;
}

} // namespace wss
