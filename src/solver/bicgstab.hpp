#pragma once

// BiCGStab (van der Vorst 1992) exactly as the paper's Algorithm 1, with the
// operation census of Table I: per iteration, 2 matrix-vector products,
// 4 inner products, and 6 AXPY-type updates. The solver is templated on a
// precision policy (fp16/mixed/fp32/fp64) and on the operator, so the same
// code produces the Fig. 9 residual curves in every arithmetic mode and
// drives both the reference stencils and the WSE-mapped operator.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "solver/blas.hpp"
#include "telemetry/health.hpp"
#include "telemetry/ledger.hpp"
#include "telemetry/postmortem.hpp"
#include "telemetry/probe.hpp"

namespace wss {

/// Why a solve stopped.
enum class StopReason {
  Converged,      ///< relative residual reached the tolerance
  MaxIterations,  ///< iteration budget exhausted
  Breakdown,      ///< a recurrence scalar vanished or went non-finite
                  ///< (see SolveResult::breakdown for the classification)
  Stagnation,     ///< residual stopped decreasing (precision floor)
};

[[nodiscard]] constexpr const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::Converged: return "converged";
    case StopReason::MaxIterations: return "max-iterations";
    case StopReason::Breakdown: return "breakdown";
    case StopReason::Stagnation: return "stagnation";
  }
  return "unknown";
}

/// Fine-grained classification of a StopReason::Breakdown (Algorithm 1's
/// failure modes, the paper's Fig. 9 fp16 fragility made explicit).
/// `None` on any other stop; also `None` after a *healed* breakdown (a
/// restart recovered and the solve went on to stop for another reason).
enum class BreakdownKind : std::uint8_t {
  None,              ///< no (unhealed) breakdown
  RhoZero,           ///< rho = (r0, r) vanished — r0 orthogonal to r
  R0SZero,           ///< (r0, s) vanished (CG: (p, A p) — A not SPD)
  OmegaZero,         ///< omega = (q,y)/(y,y) vanished or undefined
  NonFiniteScalar,   ///< NaN/Inf reached a recurrence scalar
  NonFiniteResidual, ///< NaN/Inf reached the residual norm
  SingularDiagonal,  ///< Jacobi preconditioner hit a zero/NaN/Inf diagonal
};

[[nodiscard]] constexpr const char* to_string(BreakdownKind k) {
  switch (k) {
    case BreakdownKind::None: return "none";
    case BreakdownKind::RhoZero: return "rho-zero";
    case BreakdownKind::R0SZero: return "r0s-zero";
    case BreakdownKind::OmegaZero: return "omega-zero";
    case BreakdownKind::NonFiniteScalar: return "non-finite-scalar";
    case BreakdownKind::NonFiniteResidual: return "non-finite-residual";
    case BreakdownKind::SingularDiagonal: return "singular-diagonal";
  }
  return "unknown";
}

struct SolveResult {
  StopReason reason = StopReason::MaxIterations;
  /// What broke, when reason == Breakdown (None otherwise).
  BreakdownKind breakdown = BreakdownKind::None;
  int iterations = 0;
  /// Restarts actually performed (<= SolveControls::max_restarts).
  int restarts = 0;
  /// True residual norms ||b - A*x|| / ||b|| recorded per iteration in the
  /// solve's own arithmetic (recurrence residual, as the hardware sees it).
  std::vector<double> relative_residuals;
  FlopCounter flops;

  [[nodiscard]] double final_residual() const {
    return relative_residuals.empty() ? 1.0 : relative_residuals.back();
  }
};

struct SolveControls {
  int max_iterations = 100;
  double tolerance = 1e-8;
  /// Declare stagnation when the residual fails to improve by at least
  /// this factor over `stagnation_window` iterations (0 disables).
  int stagnation_window = 0;
  double stagnation_factor = 0.99;
  /// Breakdown recovery budget (0 = report Breakdown immediately). Each
  /// recovery re-seeds the Krylov space from the current iterate: r = b -
  /// A*x, r0 = p = r — van der Vorst's restarted BiCGStab. A restart
  /// consumes one slot of `max_iterations` so a pathological system still
  /// terminates. Only meaningful when the current iterate is finite;
  /// otherwise the breakdown is reported as-is.
  int max_restarts = 0;

  /// Optional telemetry sinks (both null by default: zero overhead).
  /// With `metrics` set, iteration counts / flops / residual gauges land
  /// in the registry under `probe_name.*`; with `spans` set, spmv / dot /
  /// iteration phases are recorded as nested trace spans.
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::SpanTracer* spans = nullptr;
  const char* probe_name = "solver";
  /// Optional scalar flight recorder (docs/POSTMORTEM.md): with this set,
  /// every iteration's rho / alpha / omega / beta / residual lands in the
  /// bounded history, and a breakdown or NaN stop snapshots it into a
  /// post-mortem bundle when WSS_POSTMORTEM_DIR is set — the host-side
  /// "cycles leading up to the NaN". Null = zero overhead.
  telemetry::ScalarHistory* scalars = nullptr;
};

/// Optional per-iteration observer: called with the iteration index and
/// the current iterate after each BiCGStab step (e.g. to record the true
/// fp64 residual for the Fig. 9 curves).
template <typename T>
using IterationObserver = std::function<void(int, std::span<const T>)>;

/// Solve A x = b by BiCGStab in the arithmetic of policy P.
///
/// `apply` computes y = A*v in storage precision. `x` carries the initial
/// guess in and the solution out. Vector shapes must all match.
template <typename P, typename ApplyFn>
SolveResult bicgstab(ApplyFn&& apply, std::span<const typename P::storage_t> b,
                     std::span<typename P::storage_t> x,
                     const SolveControls& controls = {},
                     const IterationObserver<typename P::storage_t>* observer =
                         nullptr) {
  using T = typename P::storage_t;
  using Acc = typename P::dot_acc_t;
  const std::size_t n = b.size();

  SolveResult result;
  FlopCounter* fc = &result.flops;
  telemetry::SolverProbe probe(controls.metrics, controls.spans,
                               controls.probe_name);
  auto solve_span = probe.phase("bicgstab");

  // Null-tolerant scalar history (one pointer test per record) and the
  // host-side anomaly trigger: breakdowns and NaN stops snapshot the
  // recorded scalars into a post-mortem bundle (inert unless
  // WSS_POSTMORTEM_DIR is set; see telemetry/postmortem.hpp).
  const auto record_scalar = [&](std::uint64_t it, const char* name,
                                 double value) {
    if (controls.scalars != nullptr) {
      controls.scalars->record(it, name, value);
    }
  };
  // Run ledger (docs/TIMESERIES.md): host-side solves are runs too — when
  // WSS_LEDGER_DIR is set, every stop path appends one manifest recording
  // the outcome and the convergence metrics. Inert otherwise.
  const auto record_ledger = [&]() {
    if (telemetry::ledger_dir().empty()) return;
    telemetry::RunManifest m;
    m.run_id = telemetry::next_run_id(controls.probe_name);
    m.program = controls.probe_name;
    m.outcome = to_string(result.reason);
    m.env = telemetry::wss_environment();
    m.add_metric("iterations", static_cast<double>(result.iterations));
    m.add_metric("residual", result.final_residual());
    m.add_metric("flops", static_cast<double>(result.flops.total()));
    if (result.restarts > 0) {
      m.add_metric("restarts", static_cast<double>(result.restarts));
    }
    // Host solves have no fabric frames, but the health engine's
    // scalar-only rules (residual stagnation, non-finite scalars) still
    // apply to the recorded history (docs/HEALTH.md).
    if (controls.scalars != nullptr && telemetry::health_enabled()) {
      const std::vector<telemetry::HealthAlert> alerts =
          telemetry::evaluate_scalar_health(*controls.scalars,
                                            telemetry::health_config());
      if (!alerts.empty()) {
        m.add_metric("alerts", static_cast<double>(alerts.size()));
        for (const telemetry::HealthAlert& a : alerts) {
          m.add_alert(a.rule, telemetry::to_string(a.severity), a.last_cycle);
        }
      }
    }
    (void)telemetry::maybe_append_run_manifest(m);
  };
  const auto report_breakdown = [&]() {
    if (result.reason != StopReason::Breakdown) return;
    telemetry::AnomalyInfo anomaly;
    anomaly.kind = (result.breakdown == BreakdownKind::NonFiniteScalar ||
                    result.breakdown == BreakdownKind::NonFiniteResidual)
                       ? telemetry::AnomalyInfo::Kind::NanScalar
                       : telemetry::AnomalyInfo::Kind::Breakdown;
    anomaly.cycle = static_cast<std::uint64_t>(result.iterations);
    anomaly.detail = std::string("bicgstab breakdown: ") +
                     to_string(result.breakdown) + " at iteration " +
                     std::to_string(result.iterations);
    telemetry::PostmortemInputs inputs;
    inputs.scalars = controls.scalars;
    inputs.program = controls.probe_name;
    (void)telemetry::maybe_write_postmortem(anomaly, inputs);
  };

  std::vector<T> r(n), r0(n), p(n), s(n), y(n), q(n), ax(n);

  // r0 = b - A*x0; with the usual x0 = 0 this is r0 = b (Algorithm 1 line 2).
  {
    auto span = probe.phase("setup");
    apply(std::span<const T>(x), std::span<T>(ax), fc);
  }
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - ax[i];
  }
  detail::count_adds<T>(*fc, n);
  copy(std::span<const T>(r), std::span<T>(r0));
  copy(std::span<const T>(r), std::span<T>(p));

  // Setup dots belong to the Table I census too (the wafer computes
  // ||b|| with the same reduction hardware as every other dot).
  const double bnorm = norm2<P>(b, fc);
  if (bnorm == 0.0) {
    for (auto& xi : x) xi = T{};
    result.reason = StopReason::Converged;
    result.relative_residuals.push_back(0.0);
    probe.finish(to_string(result.reason), result.iterations,
                 result.final_residual());
    record_ledger();
    return result;
  }
  if (!std::isfinite(bnorm)) {
    // A non-finite right-hand side cannot be solved or restarted around.
    result.reason = StopReason::Breakdown;
    result.breakdown = BreakdownKind::NonFiniteResidual;
    probe.finish(to_string(result.reason), result.iterations,
                 result.final_residual());
    record_ledger();
    report_breakdown();
    return result;
  }

  Acc rho = dot<P>(std::span<const T>(r0), std::span<const T>(r), fc);

  // Breakdown recovery: re-seed the Krylov space from the current iterate
  // (r = b - A*x, r0 = p = r — restarted BiCGStab). Returns true when the
  // solve can continue; false leaves `result` describing the breakdown.
  auto try_restart = [&](BreakdownKind kind) -> bool {
    result.breakdown = kind;
    result.reason = StopReason::Breakdown;
    if (result.restarts >= controls.max_restarts) return false;
    for (const T& xi : x) {
      if (!std::isfinite(to_double(xi))) return false;  // nothing to save
    }
    {
      auto span = probe.phase("restart");
      apply(std::span<const T>(x), std::span<T>(ax), fc);
      for (std::size_t i = 0; i < n; ++i) {
        r[i] = b[i] - ax[i];
      }
      detail::count_adds<T>(*fc, n);
      copy(std::span<const T>(r), std::span<T>(r0));
      copy(std::span<const T>(r), std::span<T>(p));
      rho = dot<P>(std::span<const T>(r0), std::span<const T>(r), fc);
    }
    const double rho_d = to_double(rho);
    if (rho_d == 0.0 || !std::isfinite(rho_d)) return false;
    ++result.restarts;
    result.breakdown = BreakdownKind::None;  // healed
    result.reason = StopReason::MaxIterations;
    return true;
  };

  for (int it = 0; it < controls.max_iterations; ++it) {
    auto iteration_span = probe.phase("iteration");

    // Algorithm 1 checks rho *before* anything divides by it (alpha here,
    // beta below) — a vanished or poisoned rho is a breakdown now, not a
    // silent NaN in the next iterate. A restart consumes this slot.
    const double rho_d = to_double(rho);
    record_scalar(static_cast<std::uint64_t>(it), "rho", rho_d);
    if (!std::isfinite(rho_d)) {
      if (try_restart(BreakdownKind::NonFiniteScalar)) continue;
      break;
    }
    if (rho_d == 0.0) {
      if (try_restart(BreakdownKind::RhoZero)) continue;
      break;
    }

    // s = A p
    {
      auto span = probe.phase("spmv");
      apply(std::span<const T>(p), std::span<T>(s), fc);
    }

    Acc r0s{};
    {
      auto span = probe.phase("dot");
      r0s = dot<P>(std::span<const T>(r0), std::span<const T>(s), fc);
    }
    const double r0s_d = to_double(r0s);
    if (!std::isfinite(r0s_d)) {
      if (try_restart(BreakdownKind::NonFiniteScalar)) continue;
      break;
    }
    if (r0s_d == 0.0) {
      if (try_restart(BreakdownKind::R0SZero)) continue;
      break;
    }
    const double alpha_d = rho_d / r0s_d;
    if (!std::isfinite(alpha_d)) {
      if (try_restart(BreakdownKind::NonFiniteScalar)) continue;
      break;
    }
    record_scalar(static_cast<std::uint64_t>(it), "alpha", alpha_d);
    const T alpha = from_double<T>(alpha_d);

    // q = r - alpha s
    xpay(std::span<const T>(r), -alpha, std::span<const T>(s),
         std::span<T>(q), fc);

    // y = A q
    Acc qy{};
    Acc yy{};
    {
      auto span = probe.phase("spmv");
      apply(std::span<const T>(q), std::span<T>(y), fc);
    }
    {
      auto span = probe.phase("dot");
      qy = dot<P>(std::span<const T>(q), std::span<const T>(y), fc);
      yy = dot<P>(std::span<const T>(y), std::span<const T>(y), fc);
    }
    const double qy_d = to_double(qy);
    const double yy_d = to_double(yy);
    if (!std::isfinite(qy_d) || !std::isfinite(yy_d)) {
      if (try_restart(BreakdownKind::NonFiniteScalar)) continue;
      break;
    }
    // omega = (q,y)/(y,y). BOTH zeros are breakdowns: yy == 0 makes omega
    // undefined, qy == 0 makes omega exactly 0 and beta = alpha/omega
    // divides by it — the fp16 NaN-poisoning path this PR closes.
    if (yy_d == 0.0 || qy_d == 0.0) {
      if (try_restart(BreakdownKind::OmegaZero)) continue;
      break;
    }
    const double omega_d = qy_d / yy_d;
    if (!std::isfinite(omega_d) || omega_d == 0.0) {
      // qy/yy can still underflow to 0 (or overflow) in double.
      if (try_restart(omega_d == 0.0 ? BreakdownKind::OmegaZero
                                     : BreakdownKind::NonFiniteScalar)) {
        continue;
      }
      break;
    }
    record_scalar(static_cast<std::uint64_t>(it), "omega", omega_d);
    const T omega = from_double<T>(omega_d);

    {
      auto span = probe.phase("axpy");
      // x = x + alpha p + omega q
      axpy(alpha, std::span<const T>(p), std::span<T>(x), fc);
      axpy(omega, std::span<const T>(q), std::span<T>(x), fc);

      // r_{i+1} = q - omega y
      xpay(std::span<const T>(q), -omega, std::span<const T>(y),
           std::span<T>(r), fc);
    }

    const Acc rho_next =
        dot<P>(std::span<const T>(r0), std::span<const T>(r), fc);

    // Residual norm from the already-computed (r, r)? The paper's Table I
    // counts exactly 4 dots, so we reuse rho bookkeeping and measure the
    // recurrence residual from r directly (costed as part of the 4 dots in
    // the census: the norm shares the AllReduce with the rho dot on the
    // wafer; here we account it as reporting, not solver flops).
    double rnorm = 0.0;
    {
      Acc acc{};
      for (std::size_t i = 0; i < n; ++i) {
        P::dot_step(acc, r[i], r[i]);
      }
      rnorm = std::sqrt(to_double(acc));
    }
    if (!std::isfinite(rnorm)) {
      if (try_restart(BreakdownKind::NonFiniteResidual)) continue;
      break;
    }
    record_scalar(static_cast<std::uint64_t>(it), "residual", rnorm / bnorm);
    result.relative_residuals.push_back(rnorm / bnorm);
    ++result.iterations;
    probe.iteration(result.iterations, rnorm / bnorm, result.flops.total());
    if (observer != nullptr) {
      (*observer)(result.iterations, std::span<const T>(x));
    }

    if (rnorm / bnorm < controls.tolerance) {
      result.reason = StopReason::Converged;
      probe.finish(to_string(result.reason), result.iterations,
                   result.final_residual());
      record_ledger();
      return result;
    }
    if (controls.stagnation_window > 0 &&
        result.iterations > controls.stagnation_window) {
      const double prev =
          result.relative_residuals[static_cast<std::size_t>(
              result.iterations - 1 - controls.stagnation_window)];
      if (rnorm / bnorm > prev * controls.stagnation_factor) {
        result.reason = StopReason::Stagnation;
        probe.finish(to_string(result.reason), result.iterations,
                     result.final_residual());
        record_ledger();
        return result;
      }
    }

    // beta = (alpha/omega)(rho_next/rho); rho and omega were guarded
    // nonzero and finite above, but the quotient can still blow up.
    const double beta_d = (alpha_d / omega_d) * (to_double(rho_next) / rho_d);
    if (!std::isfinite(beta_d)) {
      if (try_restart(BreakdownKind::NonFiniteScalar)) continue;
      break;
    }
    record_scalar(static_cast<std::uint64_t>(it), "beta", beta_d);
    const T beta = from_double<T>(beta_d);
    rho = rho_next;

    // p_{i+1} = r + beta (p - omega s)
    for (std::size_t i = 0; i < n; ++i) {
      T t = p[i];
      fma_update(t, -omega, s[i]); // t = p - omega s
      T pn = r[i];
      fma_update(pn, beta, t); // pn = r + beta t
      p[i] = pn;
    }
    detail::count_adds<T>(*fc, 2 * n);
    detail::count_muls<T>(*fc, 2 * n);
  }

  probe.finish(to_string(result.reason), result.iterations,
               result.final_residual());
  record_ledger();
  report_breakdown();
  return result;
}

} // namespace wss
