#!/usr/bin/env python3
"""Env-table drift gate (CI): code vs docs/OBSERVABILITY.md.

Every ``WSS_*`` environment variable the codebase reads goes through the
strict parsers in ``src/common/env.hpp`` (``parse_int`` / ``parse_u64`` /
``parse_string`` / ``parse_cstr`` / ``is_set`` / ``raw``).  That makes the
full knob surface greppable — so this script extracts

  1. every variable read at an ``env::...("WSS_...")`` call site under
     src/, tools/, bench/ and tests/, and
  2. every variable documented in the OBSERVABILITY.md env table
     (first cell of each ``| `WSS_...` | ... |`` row),

and fails (exit 1) when the two sets drift in either direction: a knob
that is read but undocumented rots the operator docs, and a row that no
code reads any more is a stale promise.

``WSS_TEST_*`` names are reserved for the env-parser unit tests
(tests/common/env_test.cpp) and are excluded from the comparison.

Usage:  python3 scripts/check_env_docs.py  [--repo <root>]
"""

import argparse
import pathlib
import re
import sys

CODE_DIRS = ["src", "tools", "bench", "tests"]
CODE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}
DOC = "docs/OBSERVABILITY.md"

# env:: call with the variable-name literal as the first argument; \s*
# spans the newline clang-format inserts when the call wraps.
CALL_RE = re.compile(
    r'env::(?:parse_int|parse_u64|parse_string|parse_cstr|is_set|raw)\(\s*'
    r'"(WSS_[A-Z0-9_]+)"'
)
# A backticked WSS_ token in the *first* cell of a markdown table row;
# one row may document several (e.g. WSS_PROPTEST_SEED / _SCALE). Cell
# boundaries are unescaped pipes — `<reference\|turbo>` stays one cell.
ROW_RE = re.compile(r"^\|((?:\\\||[^|])*)\|")
TOKEN_RE = re.compile(r"`[^`]*?(WSS_[A-Z0-9_]+)[^`]*?`")

RESERVED_PREFIX = "WSS_TEST_"


def code_vars(repo: pathlib.Path) -> dict[str, str]:
    """var -> one 'file:line' witness (first seen, for the error message)."""
    out: dict[str, str] = {}
    for top in CODE_DIRS:
        root = repo / top
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in CODE_SUFFIXES:
                continue
            text = path.read_text(encoding="utf-8", errors="replace")
            for m in CALL_RE.finditer(text):
                var = m.group(1)
                if var.startswith(RESERVED_PREFIX):
                    continue
                line = text.count("\n", 0, m.start()) + 1
                out.setdefault(var, f"{path.relative_to(repo)}:{line}")
    return out


def doc_vars(repo: pathlib.Path) -> dict[str, str]:
    """var -> 'file:line' of its env-table row."""
    out: dict[str, str] = {}
    doc = repo / DOC
    if not doc.is_file():
        sys.exit(f"error: {DOC} not found under {repo}")
    for lineno, line in enumerate(doc.read_text(encoding="utf-8").splitlines(),
                                  start=1):
        row = ROW_RE.match(line)
        if row is None:
            continue
        for tok in TOKEN_RE.finditer(row.group(1)):
            out.setdefault(tok.group(1), f"{DOC}:{lineno}")
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repo", default=".",
                    help="repository root (default: cwd)")
    args = ap.parse_args()
    repo = pathlib.Path(args.repo).resolve()

    read = code_vars(repo)
    documented = doc_vars(repo)

    undocumented = sorted(set(read) - set(documented))
    unread = sorted(set(documented) - set(read))

    for var in undocumented:
        print(f"DRIFT {var}: read at {read[var]} but missing from the "
              f"{DOC} env table")
    for var in unread:
        print(f"DRIFT {var}: documented at {documented[var]} but no "
              f"env.hpp call site reads it")

    if undocumented or unread:
        print(f"env-doc drift: {len(undocumented)} undocumented, "
              f"{len(unread)} unread")
        return 1
    print(f"env table in sync: {len(read)} WSS_* variables read and "
          f"documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
