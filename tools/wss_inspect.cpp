// wss_inspect — telemetry artifact forensics CLI (docs/POSTMORTEM.md,
// docs/TIMESERIES.md).
//
//   wss_inspect print <bundle.json> [--last N]
//     Pretty-print one post-mortem bundle: anomaly, stop reason, wait-for
//     cycles, blocked tiles, last-N flight events of the busiest/blocked
//     tiles, solver scalars, time-series tail.
//
//   wss_inspect diff <a.json> <b.json>
//     First divergence between two bundles of the same program — the
//     earliest (cycle, tile, event) at which the recorded streams differ,
//     e.g. a fault-injected run against its clean twin. Exit 0 when the
//     streams are identical, 3 when they diverge.
//
//   wss_inspect self-check <bundle.json> [...]
//     Schema/invariant guard for CI: verifies each bundle loads, carries
//     the expected schema tag, and satisfies the structural invariants the
//     other subcommands depend on. Exit 0 iff every bundle passes.
//
//   wss_inspect timeseries print <series.json> [--last N] [--window A:B]
//   wss_inspect timeseries self-check <series.json> [...]
//   wss_inspect timeseries diff <a.json> <b.json>
//     The same trio for `wss.timeseries/1` files (WSS_SAMPLE_CYCLES): a
//     sparkline dashboard, the CI schema/conservation guard, and the
//     first-divergent-frame diff (the determinism check between runs at
//     different WSS_SIM_THREADS). `--window A:B` restricts the dashboard
//     to the inclusive frame-index range A..B.
//
//   wss_inspect flows list <netflows.json> [...]
//   wss_inspect flows show <netflows.json>
//   wss_inspect flows self-check <netflows.json> [...]
//   wss_inspect flows diff <a.json> <b.json>
//     The same family for `wss.netflows/1` files written by the network
//     observatory (docs/NETWORK.md): one-line-per-flow listing, full
//     detail with hot/congested links and bisection words, the CI
//     schema + exact-conservation guard (sum of per-flow words must equal
//     the fabric's link-transfer count), and the first-divergent-flow
//     diff (exit 3 on divergence).
//
//   wss_inspect alerts list <alerts.json> [...]
//   wss_inspect alerts show <alerts.json>
//   wss_inspect alerts self-check <alerts.json> [...]
//   wss_inspect alerts diff <a.json> <b.json>
//     The same family for `wss.alerts/1` files written by the runtime
//     health engine (docs/HEALTH.md): one-line-per-alert listing, full
//     detail with rule inputs, the CI schema guard, and the
//     first-divergent-alert diff (exit 3 on divergence).
//
//   wss_inspect runs list <ledger-dir-or-file>
//   wss_inspect runs show <ledger> <run-id-or-prefix>
//   wss_inspect runs diff <ledger> <run-a> <run-b>
//   wss_inspect runs trend <ledger> <metric>
//     Query the append-only run ledger ($WSS_LEDGER_DIR/ledger.jsonl):
//     tabular history, one-run manifests, run-vs-run comparison (outcome,
//     metrics, WSS_* env), and a metric trend across runs.
//
// Exit codes: 0 success, 1 usage error, 2 unreadable/invalid artifact,
// 3 divergence found (diff only).

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <string>

#include "telemetry/health.hpp"
#include "telemetry/ledger.hpp"
#include "telemetry/netmon.hpp"
#include "telemetry/postmortem.hpp"
#include "telemetry/timeseries.hpp"

namespace {

using wss::telemetry::AlertDivergence;
using wss::telemetry::AlertsFile;
using wss::telemetry::Bundle;
using wss::telemetry::Divergence;
using wss::telemetry::FrameDivergence;
using wss::telemetry::Ledger;
using wss::telemetry::NetFlowsDivergence;
using wss::telemetry::NetFlowsFile;
using wss::telemetry::RunManifest;
using wss::telemetry::TimeSeries;

int usage() {
  std::fprintf(
      stderr,
      "usage: wss_inspect print <bundle.json> [--last N]\n"
      "       wss_inspect diff <a.json> <b.json>\n"
      "       wss_inspect self-check <bundle.json> [...]\n"
      "       wss_inspect timeseries print <series.json> [--last N]"
      " [--window A:B]\n"
      "       wss_inspect timeseries self-check <series.json> [...]\n"
      "       wss_inspect timeseries diff <a.json> <b.json>\n"
      "       wss_inspect flows list <netflows.json> [...]\n"
      "       wss_inspect flows show <netflows.json>\n"
      "       wss_inspect flows self-check <netflows.json> [...]\n"
      "       wss_inspect flows diff <a.json> <b.json>\n"
      "       wss_inspect alerts list <alerts.json> [...]\n"
      "       wss_inspect alerts show <alerts.json>\n"
      "       wss_inspect alerts self-check <alerts.json> [...]\n"
      "       wss_inspect alerts diff <a.json> <b.json>\n"
      "       wss_inspect runs list <ledger>\n"
      "       wss_inspect runs show <ledger> <run-id>\n"
      "       wss_inspect runs diff <ledger> <run-a> <run-b>\n"
      "       wss_inspect runs trend <ledger> <metric>\n");
  return 1;
}

bool load_or_complain(const std::string& path, Bundle* out) {
  std::string error;
  if (!wss::telemetry::load_bundle(path, out, &error)) {
    std::fprintf(stderr, "wss_inspect: %s\n", error.c_str());
    return false;
  }
  return true;
}

int cmd_print(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string path = argv[0];
  std::size_t last_k = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--last") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v < 1) {
        std::fprintf(stderr, "wss_inspect: --last wants a positive count\n");
        return 1;
      }
      last_k = static_cast<std::size_t>(v);
    } else {
      return usage();
    }
  }
  Bundle bundle;
  if (!load_or_complain(path, &bundle)) return 2;
  const std::string rendered = wss::telemetry::pretty_bundle(bundle, last_k);
  std::fputs(rendered.c_str(), stdout);
  return 0;
}

int cmd_diff(int argc, char** argv) {
  if (argc != 2) return usage();
  Bundle a;
  Bundle b;
  if (!load_or_complain(argv[0], &a)) return 2;
  if (!load_or_complain(argv[1], &b)) return 2;
  const Divergence d = wss::telemetry::first_divergence(a, b);
  const std::string rendered = wss::telemetry::pretty_divergence(d);
  std::fputs(rendered.c_str(), stdout);
  return d.found ? 3 : 0;
}

int cmd_self_check(int argc, char** argv) {
  if (argc < 1) return usage();
  int failures = 0;
  for (int i = 0; i < argc; ++i) {
    Bundle bundle;
    if (!load_or_complain(argv[i], &bundle)) {
      ++failures;
      continue;
    }
    std::string error;
    if (!wss::telemetry::self_check_bundle(bundle, &error)) {
      std::fprintf(stderr, "wss_inspect: %s: self-check failed: %s\n",
                   argv[i], error.c_str());
      ++failures;
      continue;
    }
    std::printf("%s: ok (%s, %zu tiles, %zu heatmaps)\n", argv[i],
                bundle.anomaly_kind.c_str(), bundle.tiles.size(),
                bundle.heatmaps.size());
  }
  return failures == 0 ? 0 : 2;
}

// --- timeseries subcommands ---------------------------------------------

bool load_series_or_complain(const std::string& path, TimeSeries* out) {
  std::string error;
  if (!wss::telemetry::load_timeseries(path, out, &error)) {
    std::fprintf(stderr, "wss_inspect: %s\n", error.c_str());
    return false;
  }
  return true;
}

/// Parse "--window A:B" (inclusive, 0-based frame indices). Returns false
/// on malformed input.
bool parse_window(const char* text, std::size_t* lo, std::size_t* hi) {
  char* end = nullptr;
  const long a = std::strtol(text, &end, 10);
  if (end == text || *end != ':' || a < 0) return false;
  const char* rest = end + 1;
  const long b = std::strtol(rest, &end, 10);
  if (end == rest || *end != '\0' || b < a) return false;
  *lo = static_cast<std::size_t>(a);
  *hi = static_cast<std::size_t>(b);
  return true;
}

int cmd_ts_print(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string path = argv[0];
  std::size_t last_k = 8;
  bool windowed = false;
  std::size_t win_lo = 0;
  std::size_t win_hi = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--last") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v < 1) {
        std::fprintf(stderr, "wss_inspect: --last wants a positive count\n");
        return 1;
      }
      last_k = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      if (!parse_window(argv[++i], &win_lo, &win_hi)) {
        std::fprintf(stderr,
                     "wss_inspect: --window wants A:B with 0 <= A <= B\n");
        return 1;
      }
      windowed = true;
    } else {
      return usage();
    }
  }
  TimeSeries ts;
  if (!load_series_or_complain(path, &ts)) return 2;
  if (windowed) {
    if (win_lo >= ts.frames.size()) {
      std::fprintf(stderr,
                   "wss_inspect: --window %zu:%zu out of range (%zu frames)\n",
                   win_lo, win_hi, ts.frames.size());
      return 1;
    }
    const std::size_t total = ts.frames.size();
    win_hi = std::min(win_hi, total - 1);
    // Slice the frame vector; sparklines and the tail table then span
    // exactly the requested window.
    ts.frames.assign(ts.frames.begin() + static_cast<std::ptrdiff_t>(win_lo),
                     ts.frames.begin() + static_cast<std::ptrdiff_t>(win_hi) +
                         1);
    std::printf("window: frames %zu..%zu of %zu\n", win_lo, win_hi, total);
    last_k = std::min(last_k, ts.frames.size());
  }
  const std::string rendered = wss::telemetry::pretty_timeseries(ts, last_k);
  std::fputs(rendered.c_str(), stdout);
  return 0;
}

int cmd_ts_self_check(int argc, char** argv) {
  if (argc < 1) return usage();
  int failures = 0;
  for (int i = 0; i < argc; ++i) {
    TimeSeries ts;
    if (!load_series_or_complain(argv[i], &ts)) {
      ++failures;
      continue;
    }
    std::string error;
    if (!wss::telemetry::self_check_timeseries(ts, &error)) {
      std::fprintf(stderr, "wss_inspect: %s: self-check failed: %s\n", argv[i],
                   error.c_str());
      ++failures;
      continue;
    }
    std::printf("%s: ok (%s, %zu frames, every %llu cycles)\n", argv[i],
                ts.program.empty() ? "unnamed" : ts.program.c_str(),
                ts.frames.size(),
                static_cast<unsigned long long>(ts.sample_cycles));
  }
  return failures == 0 ? 0 : 2;
}

int cmd_ts_diff(int argc, char** argv) {
  if (argc != 2) return usage();
  TimeSeries a;
  TimeSeries b;
  if (!load_series_or_complain(argv[0], &a)) return 2;
  if (!load_series_or_complain(argv[1], &b)) return 2;
  const FrameDivergence d = wss::telemetry::first_frame_divergence(a, b);
  const std::string rendered = wss::telemetry::pretty_frame_divergence(d);
  std::fputs(rendered.c_str(), stdout);
  return d.found ? 3 : 0;
}

int cmd_timeseries(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string sub = argv[0];
  if (sub == "print") return cmd_ts_print(argc - 1, argv + 1);
  if (sub == "self-check") return cmd_ts_self_check(argc - 1, argv + 1);
  if (sub == "diff") return cmd_ts_diff(argc - 1, argv + 1);
  return usage();
}

// --- flows subcommands --------------------------------------------------

bool load_netflows_or_complain(const std::string& path, NetFlowsFile* out) {
  std::string error;
  if (!wss::telemetry::load_netflows(path, out, &error)) {
    std::fprintf(stderr, "wss_inspect: %s\n", error.c_str());
    return false;
  }
  return true;
}

int cmd_flows_list(int argc, char** argv) {
  if (argc < 1) return usage();
  for (int i = 0; i < argc; ++i) {
    NetFlowsFile file;
    if (!load_netflows_or_complain(argv[i], &file)) return 2;
    std::printf(
        "%s: %s run %s, %dx%d fabric, %zu flow(s), %llu words over %llu "
        "cycles\n",
        argv[i], file.program.empty() ? "unnamed" : file.program.c_str(),
        file.run_id.empty() ? "?" : file.run_id.c_str(), file.width,
        file.height, file.flows.size(),
        static_cast<unsigned long long>(file.link_transfers),
        static_cast<unsigned long long>(file.cycles));
    for (const wss::telemetry::NetFlowTotals& f : file.flows) {
      std::printf("  %s\n", wss::telemetry::summarize_flow(f).c_str());
    }
  }
  return 0;
}

int cmd_flows_show(int argc, char** argv) {
  if (argc != 1) return usage();
  NetFlowsFile file;
  if (!load_netflows_or_complain(argv[0], &file)) return 2;
  const std::string rendered = wss::telemetry::pretty_netflows(file);
  std::fputs(rendered.c_str(), stdout);
  return 0;
}

int cmd_flows_self_check(int argc, char** argv) {
  if (argc < 1) return usage();
  int failures = 0;
  for (int i = 0; i < argc; ++i) {
    NetFlowsFile file;
    if (!load_netflows_or_complain(argv[i], &file)) {
      ++failures;
      continue;
    }
    std::string error;
    if (!wss::telemetry::self_check_netflows(file, &error)) {
      std::fprintf(stderr, "wss_inspect: %s: self-check failed: %s\n", argv[i],
                   error.c_str());
      ++failures;
      continue;
    }
    std::printf("%s: ok (%s, %zu flows, %llu words conserved)\n", argv[i],
                file.program.empty() ? "unnamed" : file.program.c_str(),
                file.flows.size(),
                static_cast<unsigned long long>(file.link_transfers));
  }
  return failures == 0 ? 0 : 2;
}

int cmd_flows_diff(int argc, char** argv) {
  if (argc != 2) return usage();
  NetFlowsFile a;
  NetFlowsFile b;
  if (!load_netflows_or_complain(argv[0], &a)) return 2;
  if (!load_netflows_or_complain(argv[1], &b)) return 2;
  const NetFlowsDivergence d =
      wss::telemetry::first_netflows_divergence(a, b);
  const std::string rendered = wss::telemetry::pretty_netflows_divergence(d);
  std::fputs(rendered.c_str(), stdout);
  return d.found ? 3 : 0;
}

int cmd_flows(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string sub = argv[0];
  if (sub == "list") return cmd_flows_list(argc - 1, argv + 1);
  if (sub == "show") return cmd_flows_show(argc - 1, argv + 1);
  if (sub == "self-check") return cmd_flows_self_check(argc - 1, argv + 1);
  if (sub == "diff") return cmd_flows_diff(argc - 1, argv + 1);
  return usage();
}

// --- alerts subcommands -------------------------------------------------

bool load_alerts_or_complain(const std::string& path, AlertsFile* out) {
  std::string error;
  if (!wss::telemetry::load_alerts(path, out, &error)) {
    std::fprintf(stderr, "wss_inspect: %s\n", error.c_str());
    return false;
  }
  return true;
}

int cmd_alerts_list(int argc, char** argv) {
  if (argc < 1) return usage();
  for (int i = 0; i < argc; ++i) {
    AlertsFile file;
    if (!load_alerts_or_complain(argv[i], &file)) return 2;
    std::printf("%s: %s run %s, %zu alert(s), tol %.0f%%\n", argv[i],
                file.program.empty() ? "unnamed" : file.program.c_str(),
                file.run_id.empty() ? "?" : file.run_id.c_str(),
                file.alerts.size(), file.tol_pct);
    for (const wss::telemetry::HealthAlert& a : file.alerts) {
      std::printf("  %s\n", wss::telemetry::summarize_alert(a).c_str());
    }
  }
  return 0;
}

int cmd_alerts_show(int argc, char** argv) {
  if (argc != 1) return usage();
  AlertsFile file;
  if (!load_alerts_or_complain(argv[0], &file)) return 2;
  const std::string rendered = wss::telemetry::pretty_alerts(file);
  std::fputs(rendered.c_str(), stdout);
  return 0;
}

int cmd_alerts_self_check(int argc, char** argv) {
  if (argc < 1) return usage();
  int failures = 0;
  for (int i = 0; i < argc; ++i) {
    AlertsFile file;
    if (!load_alerts_or_complain(argv[i], &file)) {
      ++failures;
      continue;
    }
    std::string error;
    if (!wss::telemetry::self_check_alerts(file, &error)) {
      std::fprintf(stderr, "wss_inspect: %s: self-check failed: %s\n", argv[i],
                   error.c_str());
      ++failures;
      continue;
    }
    std::printf("%s: ok (%s, %zu alerts)\n", argv[i],
                file.program.empty() ? "unnamed" : file.program.c_str(),
                file.alerts.size());
  }
  return failures == 0 ? 0 : 2;
}

int cmd_alerts_diff(int argc, char** argv) {
  if (argc != 2) return usage();
  AlertsFile a;
  AlertsFile b;
  if (!load_alerts_or_complain(argv[0], &a)) return 2;
  if (!load_alerts_or_complain(argv[1], &b)) return 2;
  const AlertDivergence d = wss::telemetry::first_alert_divergence(a, b);
  const std::string rendered = wss::telemetry::pretty_alert_divergence(d);
  std::fputs(rendered.c_str(), stdout);
  return d.found ? 3 : 0;
}

int cmd_alerts(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string sub = argv[0];
  if (sub == "list") return cmd_alerts_list(argc - 1, argv + 1);
  if (sub == "show") return cmd_alerts_show(argc - 1, argv + 1);
  if (sub == "self-check") return cmd_alerts_self_check(argc - 1, argv + 1);
  if (sub == "diff") return cmd_alerts_diff(argc - 1, argv + 1);
  return usage();
}

// --- runs subcommands ---------------------------------------------------

bool load_ledger_or_complain(const std::string& path, Ledger* out) {
  std::string error;
  if (!wss::telemetry::load_ledger(path, out, &error)) {
    std::fprintf(stderr, "wss_inspect: %s\n", error.c_str());
    return false;
  }
  if (out->skipped_lines > 0) {
    std::fprintf(stderr, "wss_inspect: %s: skipped %zu unparseable line(s)\n",
                 path.c_str(), out->skipped_lines);
  }
  return true;
}

const RunManifest* find_run_or_complain(const Ledger& ledger,
                                        const std::string& id) {
  std::string error;
  const RunManifest* run = wss::telemetry::find_run(ledger, id, &error);
  if (run == nullptr) {
    std::fprintf(stderr, "wss_inspect: %s\n", error.c_str());
  }
  return run;
}

int cmd_runs(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string sub = argv[0];
  Ledger ledger;
  if (!load_ledger_or_complain(argv[1], &ledger)) return 2;
  if (sub == "list") {
    if (argc != 2) return usage();
    const std::string rendered = wss::telemetry::pretty_ledger_table(ledger);
    std::fputs(rendered.c_str(), stdout);
    return 0;
  }
  if (sub == "show") {
    if (argc != 3) return usage();
    const RunManifest* run = find_run_or_complain(ledger, argv[2]);
    if (run == nullptr) return 2;
    const std::string rendered = wss::telemetry::pretty_manifest(*run);
    std::fputs(rendered.c_str(), stdout);
    return 0;
  }
  if (sub == "diff") {
    if (argc != 4) return usage();
    const RunManifest* a = find_run_or_complain(ledger, argv[2]);
    if (a == nullptr) return 2;
    const RunManifest* b = find_run_or_complain(ledger, argv[3]);
    if (b == nullptr) return 2;
    const std::string rendered = wss::telemetry::diff_manifests(*a, *b);
    std::fputs(rendered.c_str(), stdout);
    return 0;
  }
  if (sub == "trend") {
    if (argc != 3) return usage();
    const std::string rendered =
        wss::telemetry::pretty_trend(ledger, argv[2]);
    std::fputs(rendered.c_str(), stdout);
    return 0;
  }
  return usage();
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "print") return cmd_print(argc - 2, argv + 2);
  if (cmd == "diff") return cmd_diff(argc - 2, argv + 2);
  if (cmd == "self-check") return cmd_self_check(argc - 2, argv + 2);
  if (cmd == "timeseries") return cmd_timeseries(argc - 2, argv + 2);
  if (cmd == "flows") return cmd_flows(argc - 2, argv + 2);
  if (cmd == "alerts") return cmd_alerts(argc - 2, argv + 2);
  if (cmd == "runs") return cmd_runs(argc - 2, argv + 2);
  if (cmd == "--help" || cmd == "-h") {
    usage();
    return 0;
  }
  return usage();
}
