// wss_inspect — post-mortem bundle forensics CLI (docs/POSTMORTEM.md).
//
//   wss_inspect print <bundle.json> [--last N]
//     Pretty-print one bundle: anomaly, stop reason, wait-for cycles,
//     blocked tiles, last-N flight events of the busiest/blocked tiles,
//     solver scalars.
//
//   wss_inspect diff <a.json> <b.json>
//     First divergence between two bundles of the same program — the
//     earliest (cycle, tile, event) at which the recorded streams differ,
//     e.g. a fault-injected run against its clean twin. Exit 0 when the
//     streams are identical, 3 when they diverge.
//
//   wss_inspect self-check <bundle.json> [...]
//     Schema/invariant guard for CI: verifies each bundle loads, carries
//     the expected schema tag, and satisfies the structural invariants the
//     other subcommands depend on. Exit 0 iff every bundle passes.
//
// Exit codes: 0 success, 1 usage error, 2 unreadable/invalid bundle,
// 3 divergence found (diff only).

#include <cstdio>
#include <cstring>
#include <string>

#include "telemetry/postmortem.hpp"

namespace {

using wss::telemetry::Bundle;
using wss::telemetry::Divergence;

int usage() {
  std::fprintf(stderr,
               "usage: wss_inspect print <bundle.json> [--last N]\n"
               "       wss_inspect diff <a.json> <b.json>\n"
               "       wss_inspect self-check <bundle.json> [...]\n");
  return 1;
}

bool load_or_complain(const std::string& path, Bundle* out) {
  std::string error;
  if (!wss::telemetry::load_bundle(path, out, &error)) {
    std::fprintf(stderr, "wss_inspect: %s\n", error.c_str());
    return false;
  }
  return true;
}

int cmd_print(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string path = argv[0];
  std::size_t last_k = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--last") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v < 1) {
        std::fprintf(stderr, "wss_inspect: --last wants a positive count\n");
        return 1;
      }
      last_k = static_cast<std::size_t>(v);
    } else {
      return usage();
    }
  }
  Bundle bundle;
  if (!load_or_complain(path, &bundle)) return 2;
  const std::string rendered = wss::telemetry::pretty_bundle(bundle, last_k);
  std::fputs(rendered.c_str(), stdout);
  return 0;
}

int cmd_diff(int argc, char** argv) {
  if (argc != 2) return usage();
  Bundle a;
  Bundle b;
  if (!load_or_complain(argv[0], &a)) return 2;
  if (!load_or_complain(argv[1], &b)) return 2;
  const Divergence d = wss::telemetry::first_divergence(a, b);
  const std::string rendered = wss::telemetry::pretty_divergence(d);
  std::fputs(rendered.c_str(), stdout);
  return d.found ? 3 : 0;
}

int cmd_self_check(int argc, char** argv) {
  if (argc < 1) return usage();
  int failures = 0;
  for (int i = 0; i < argc; ++i) {
    Bundle bundle;
    if (!load_or_complain(argv[i], &bundle)) {
      ++failures;
      continue;
    }
    std::string error;
    if (!wss::telemetry::self_check_bundle(bundle, &error)) {
      std::fprintf(stderr, "wss_inspect: %s: self-check failed: %s\n",
                   argv[i], error.c_str());
      ++failures;
      continue;
    }
    std::printf("%s: ok (%s, %zu tiles, %zu heatmaps)\n", argv[i],
                bundle.anomaly_kind.c_str(), bundle.tiles.size(),
                bundle.heatmaps.size());
  }
  return failures == 0 ? 0 : 2;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "print") return cmd_print(argc - 2, argv + 2);
  if (cmd == "diff") return cmd_diff(argc - 2, argv + 2);
  if (cmd == "self-check") return cmd_self_check(argc - 2, argv + 2);
  if (cmd == "--help" || cmd == "-h") {
    usage();
    return 0;
  }
  return usage();
}
