// wss_top — live/replay monitor for `wss.timeseries/1` files
// (docs/TIMESERIES.md).
//
//   wss_top <series.json> [--last N]
//     Replay: render the series once — header, per-category utilization
//     and pressure sparklines, residual convergence, a table of the
//     last N frames, the network pane (per-direction link words and
//     per-flow totals, when the run carried a NetMonitor — docs/NETWORK.md)
//     and the health-engine verdict pane (docs/HEALTH.md) — then exit.
//
//   wss_top <series.json> --follow [--interval-ms M] [--last N]
//     Live: re-read and re-render the file every M milliseconds (default
//     500) until interrupted, clearing the screen between redraws. Point
//     it at the WSS_TIMESERIES_OUT (or ledger) path of a running solve;
//     frames appear as RunForensics flushes them. A file that does not
//     exist yet is waited for rather than treated as an error, and a
//     torn read (the writer caught mid-flush, leaving a truncated
//     trailing frame) keeps the last good display on screen and retries
//     next tick instead of blanking it.
//
// Exit codes: 0 success, 1 usage error, 2 unreadable/invalid series
// (replay mode only; follow mode keeps waiting).

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "telemetry/health.hpp"
#include "telemetry/netmon.hpp"
#include "telemetry/timeseries.hpp"

namespace {

using wss::telemetry::TimeSeries;

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: wss_top <series.json> [--last N]\n"
               "       wss_top <series.json> --follow [--interval-ms M] "
               "[--last N]\n");
  return 1;
}

int render_once(const std::string& path, std::size_t last_k, bool complain) {
  TimeSeries ts;
  std::string error;
  if (!wss::telemetry::load_timeseries(path, &ts, &error)) {
    if (complain) std::fprintf(stderr, "wss_top: %s\n", error.c_str());
    return 2;
  }
  const std::string rendered = wss::telemetry::pretty_timeseries(ts, last_k);
  std::fputs(rendered.c_str(), stdout);
  std::fputs(wss::telemetry::pretty_net_pane(ts).c_str(), stdout);
  std::fputs(
      wss::telemetry::pretty_health_pane(ts, wss::telemetry::health_config())
          .c_str(),
      stdout);
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string path;
  bool follow = false;
  long interval_ms = 500;
  std::size_t last_k = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--follow") == 0) {
      follow = true;
    } else if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
      interval_ms = std::strtol(argv[++i], nullptr, 10);
      if (interval_ms < 1) {
        std::fprintf(stderr, "wss_top: --interval-ms wants a positive value\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--last") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v < 1) {
        std::fprintf(stderr, "wss_top: --last wants a positive count\n");
        return 1;
      }
      last_k = static_cast<std::size_t>(v);
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  if (!follow) return render_once(path, last_k, /*complain=*/true);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  bool rendered_once = false;
  while (g_stop == 0) {
    TimeSeries ts;
    std::string error;
    if (wss::telemetry::load_timeseries(path, &ts, &error)) {
      // ANSI clear + home; a plain terminal escape, no curses dependency.
      // Only clear once a fresh frame is in hand: a load that fails after
      // frames have been shown is almost always a torn read of the
      // writer's in-progress flush, and blanking the screen for it would
      // make the display flicker empty. Skip the tick and retry instead.
      const std::string rendered =
          wss::telemetry::pretty_timeseries(ts, last_k) +
          wss::telemetry::pretty_net_pane(ts) +
          wss::telemetry::pretty_health_pane(ts,
                                             wss::telemetry::health_config());
      std::fputs("\x1b[2J\x1b[H", stdout);
      std::fputs(rendered.c_str(), stdout);
      rendered_once = true;
    } else if (!rendered_once) {
      std::fputs("\x1b[2J\x1b[H", stdout);
      std::printf("wss_top: waiting for %s ...\n", path.c_str());
    }
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}
